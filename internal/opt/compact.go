package opt

import (
	"dcelens/internal/ir"
	"dcelens/internal/sema"
)

// Compact is the early normalization pass: one linear walk that folds
// trivially-constant instructions, collapses branches on constants, and
// drops unreachable blocks before the expensive passes ever see them.
//
// Lowered MiniC is full of frontend-shaped debris — constant arithmetic from
// desugaring, casts of literals, selects on literal conditions, and the
// orphan blocks left behind by early returns. Every rule here is a strict
// subset of what InstCombine/SimplifyCFG later prove; running the cheap
// subset first shrinks the IR the whole schedule iterates over, which is
// where the win comes from. The pass is scheduled identically in both
// personalities, so the differential oracle is unaffected — but its early
// position does shift downstream precision slightly (see EXPERIMENTS.md,
// "Middle-end throughput").
//
// Constant folds mutate the instruction in place into an OpConst (same
// *Instr, same ID): no allocation, and no relocation for the common case.
// Only dropped selects need use-rewriting, batched through a Relocator.
var Compact = Pass{Name: "compact", Fn: compactFunc}

func compactFunc(f *ir.Func, o Options) bool {
	changed := false
	var reloc ir.Relocator
	for _, b := range f.Blocks {
		keep := b.Instrs[:0]
		for _, in := range b.Instrs {
			if !reloc.Empty() {
				for i, a := range in.Args {
					if n := reloc.Resolve(a); n != a {
						in.Args[i] = n
					}
				}
			}
			switch in.Op {
			case ir.OpBin:
				x, okx := isConst(in.Args[0])
				y, oky := isConst(in.Args[1])
				if okx && oky {
					if v, ok := sema.EvalBinop(in.BinOp, x, y, in.Args[0].Typ, in.Typ); ok {
						in.Op = ir.OpConst
						in.IntVal = in.Typ.WrapValue(v)
						in.Args = nil
						in.BinOp = 0
						changed = true
					}
				}
			case ir.OpCast:
				if v, ok := isConst(in.Args[0]); ok {
					in.Op = ir.OpConst
					in.IntVal = in.Typ.WrapValue(v)
					in.Args = nil
					changed = true
				}
			case ir.OpSelect:
				cond := in.Args[0]
				if v, ok := isConst(cond); ok || cond.Op == ir.OpNull {
					rep := in.Args[2]
					if v != 0 {
						rep = in.Args[1]
					}
					reloc.Add(in, rep)
					changed = true
					continue // drop the select
				}
			}
			keep = append(keep, in)
		}
		b.Instrs = keep
	}
	if !reloc.Empty() {
		reloc.Apply(f)
	}
	for _, b := range f.Blocks {
		if foldConstBranch(b) {
			changed = true
		}
	}
	if removeUnreachable(f) {
		changed = true
	}
	if changed && o.RemarksOn() {
		// One summary remark per changed visit: compact fires on nearly
		// every function, so per-fold remarks would be pure noise.
		o.applied(f, "normalize", "folded constants, collapsed constant branches, pruned unreachable blocks")
	}
	return changed
}
