package opt

import (
	"dcelens/internal/ir"
	"dcelens/internal/sema"
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// InstCombine is the peephole combiner: local algebraic simplifications on
// single instructions (plus their operands' shapes). Mirrors the role of
// LLVM's instcombine / GCC's match.pd folders. The paper bisects several
// missed optimizations to peephole-pattern changes (Tables 3/4).
var InstCombine = Pass{Name: "instcombine", Fn: instCombineFunc}

func instCombineFunc(f *ir.Func, o Options) bool {
	changed := false
	var reloc ir.Relocator
	for {
		local := false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				// Canonicalize operands through this sweep's pending
				// replacements so combine sees what an eager rewriter
				// would have seen.
				if !reloc.Empty() {
					for i, a := range in.Args {
						if n := reloc.Resolve(a); n != a {
							in.Args[i] = n
						}
					}
				}
				if rep := combine(in, o); rep != nil && rep != in {
					reloc.Add(in, rep)
					local = true
				}
			}
		}
		if !local {
			break
		}
		changed = true
		reloc.Apply(f)
		reloc.Reset()
		dceFunc(f, Options{}) // drop the now-dead originals before the next sweep (no remarks: it is instcombine cleanup, not a dce decision)
	}
	return changed
}

// isConst returns the operand's constant value if it is an integer constant.
func isConst(in *ir.Instr) (int64, bool) {
	if in.Op == ir.OpConst {
		return in.IntVal, true
	}
	return 0, false
}

// constOf materializes a constant of the given type just before pos.
func constOf(pos *ir.Instr, v int64, t *types.Type) *ir.Instr {
	c := pos.Block.NewInstr(ir.OpConst, t)
	c.IntVal = t.WrapValue(v)
	pos.Block.InsertBefore(c, pos)
	return c
}

// combine returns a replacement value for in, or nil when no rule applies.
func combine(in *ir.Instr, o Options) *ir.Instr {
	switch in.Op {
	case ir.OpBin:
		return combineBin(in, o)
	case ir.OpCast:
		return combineCast(in)
	case ir.OpGEP:
		return combineGEP(in)
	case ir.OpSelect:
		return combineSelect(in)
	}
	return nil
}

func combineCast(in *ir.Instr) *ir.Instr {
	x := in.Args[0]
	if types.Identical(x.Typ, in.Typ) {
		return x
	}
	if v, ok := isConst(x); ok {
		return constOf(in, in.Typ.WrapValue(v), in.Typ)
	}
	// cast_B(cast_A(v)): when B is at most as wide as A, the inner cast
	// preserves the low B bits, so the outer cast alone is equivalent.
	if x.Op == ir.OpCast && in.Typ.Bits() <= x.Args[0].Typ.Bits() && in.Typ.Bits() <= x.Typ.Bits() {
		c := in.Block.NewInstr(ir.OpCast, in.Typ, x.Args[0])
		in.Block.InsertBefore(c, in)
		return c
	}
	return nil
}

func combineGEP(in *ir.Instr) *ir.Instr {
	if v, ok := isConst(in.Args[1]); ok && v == 0 {
		return in.Args[0]
	}
	// gep(gep(p, a), b) with constant a, b → gep(p, a+b)
	base := in.Args[0]
	if base.Op == ir.OpGEP {
		a, okA := isConst(base.Args[1])
		b, okB := isConst(in.Args[1])
		if okA && okB {
			idx := constOf(in, a+b, types.I64Type)
			g := in.Block.NewInstr(ir.OpGEP, in.Typ, base.Args[0], idx)
			in.Block.InsertBefore(g, in)
			return g
		}
	}
	return nil
}

func combineSelect(in *ir.Instr) *ir.Instr {
	if v, ok := isConst(in.Args[0]); ok {
		if v != 0 {
			return in.Args[1]
		}
		return in.Args[2]
	}
	if in.Args[0].Op == ir.OpNull {
		return in.Args[2]
	}
	if in.Args[1] == in.Args[2] {
		return in.Args[1]
	}
	return nil
}

func combineBin(in *ir.Instr, o Options) *ir.Instr {
	x, y := in.Args[0], in.Args[1]
	xc, xIsC := isConst(x)
	yc, yIsC := isConst(y)

	// Constant-constant folding.
	if xIsC && yIsC {
		if v, ok := sema.EvalBinop(in.BinOp, xc, yc, x.Typ, in.Typ); ok {
			return constOf(in, v, in.Typ)
		}
	}

	// Canonicalize commutative operations: constant on the right.
	if xIsC && !yIsC && isCommutative(in.BinOp) {
		in.Args[0], in.Args[1] = y, x
		x, y = in.Args[0], in.Args[1]
		xc, xIsC, yc, yIsC = yc, yIsC, xc, xIsC
	}
	_ = xc

	// Pointer comparison folding (EarlyCSE-style): both sides resolve to
	// distinct (global, const-offset) addresses.
	if in.BinOp == token.EqEq || in.BinOp == token.NotEq {
		if r := foldPtrCmpSyntactic(in, o); r != nil {
			return r
		}
	}

	// Identical operands.
	if x == y {
		switch in.BinOp {
		case token.Minus, token.Caret:
			if in.Typ.IsInteger() {
				return constOf(in, 0, in.Typ)
			}
		case token.Amp, token.Pipe:
			return x
		case token.EqEq, token.Le, token.Ge:
			if x.Typ.IsInteger() || x.Typ.Kind == types.Pointer {
				return constOf(in, 1, in.Typ)
			}
		case token.NotEq, token.Lt, token.Gt:
			if x.Typ.IsInteger() || x.Typ.Kind == types.Pointer {
				return constOf(in, 0, in.Typ)
			}
		}
	}

	if !yIsC || !in.Typ.IsInteger() {
		return combineBoolPattern(in)
	}

	// Identities with a constant right operand.
	switch in.BinOp {
	case token.Plus, token.Minus, token.Shl, token.Shr, token.Caret:
		// x op 0 == x (shifting by zero included).
		if yc == 0 && types.Identical(x.Typ, in.Typ) {
			return x
		}
	case token.Star:
		if yc == 0 {
			return constOf(in, 0, in.Typ)
		}
		if yc == 1 && types.Identical(x.Typ, in.Typ) {
			return x
		}
	case token.Slash:
		if yc == 1 && types.Identical(x.Typ, in.Typ) {
			return x
		}
		if yc == 0 {
			// MiniC total division: x/0 == 0.
			return constOf(in, 0, in.Typ)
		}
	case token.Percent:
		if yc == 1 {
			return constOf(in, 0, in.Typ)
		}
	case token.Amp:
		if yc == 0 {
			return constOf(in, 0, in.Typ)
		}
		if yc == -1 && types.Identical(x.Typ, in.Typ) {
			return x
		}
	case token.Pipe:
		if yc == 0 && types.Identical(x.Typ, in.Typ) {
			return x
		}
		if yc == -1 {
			return constOf(in, -1, in.Typ)
		}
	}
	return combineBoolPattern(in)
}

func isCommutative(op token.Kind) bool {
	switch op {
	case token.Plus, token.Star, token.Amp, token.Pipe, token.Caret, token.EqEq, token.NotEq:
		return true
	}
	return false
}

// combineBoolPattern simplifies comparison-of-comparison chains produced by
// the lowering of ! and short-circuit joins:
//
//	eq(eq(x, 0), 0)  → ne(x, 0)   (!!x)
//	eq(ne(x, 0), 0)  → eq(x, 0)
//	ne(b, 0)         → b          when b is itself a comparison (0/1-valued)
func combineBoolPattern(in *ir.Instr) *ir.Instr {
	if in.Op != ir.OpBin {
		return nil
	}
	y, yIsC := isConst(in.Args[1])
	if !yIsC || y != 0 {
		return nil
	}
	x := in.Args[0]
	if x.Op != ir.OpBin || !isComparison(x.BinOp) {
		return nil
	}
	switch in.BinOp {
	case token.NotEq:
		// x is 0/1-valued already.
		if types.Identical(x.Typ, in.Typ) {
			return x
		}
	case token.EqEq:
		// Invert the inner comparison.
		inv, ok := invertCmp(x.BinOp)
		if !ok {
			return nil
		}
		// Only for integer operands; pointer ordering inversions are fine
		// too since the ordering is total.
		c := in.Block.NewInstr(ir.OpBin, in.Typ, x.Args[0], x.Args[1])
		c.BinOp = inv
		in.Block.InsertBefore(c, in)
		return c
	}
	return nil
}

func isComparison(op token.Kind) bool {
	switch op {
	case token.EqEq, token.NotEq, token.Lt, token.Gt, token.Le, token.Ge:
		return true
	}
	return false
}

func invertCmp(op token.Kind) (token.Kind, bool) {
	switch op {
	case token.EqEq:
		return token.NotEq, true
	case token.NotEq:
		return token.EqEq, true
	case token.Lt:
		return token.Ge, true
	case token.Ge:
		return token.Lt, true
	case token.Gt:
		return token.Le, true
	case token.Le:
		return token.Gt, true
	}
	return op, false
}

// foldPtrCmpSyntactic resolves pointer equality when both operands are
// syntactic address constants (GlobalAddr possibly behind constant GEPs).
func foldPtrCmpSyntactic(in *ir.Instr, o Options) *ir.Instr {
	gx, offx, okx := addrConst(in.Args[0])
	gy, offy, oky := addrConst(in.Args[1])
	nx := in.Args[0].Op == ir.OpNull
	ny := in.Args[1].Op == ir.OpNull
	if (!okx && !nx) || (!oky && !ny) {
		return nil
	}
	boolVal := func(eq bool) *ir.Instr {
		v := int64(0)
		if (in.BinOp == token.EqEq) == eq {
			v = 1
		}
		return constOf(in, v, in.Typ)
	}
	switch {
	case nx && ny:
		return boolVal(true)
	case nx != ny:
		return boolVal(false) // valid addresses are never null
	}
	if !o.FoldPtrCmpNonzeroOffset && (offx != 0 || offy != 0) {
		return nil
	}
	if gx == gy {
		return boolVal(offx == offy)
	}
	return boolVal(false)
}

// addrConst resolves a value to (global, constant offset) when possible.
func addrConst(in *ir.Instr) (*ir.Global, int64, bool) {
	switch in.Op {
	case ir.OpGlobalAddr:
		return in.Global, 0, true
	case ir.OpGEP:
		g, off, ok := addrConst(in.Args[0])
		if !ok {
			return nil, 0, false
		}
		idx, isC := isConst(in.Args[1])
		if !isC {
			return nil, 0, false
		}
		return g, off + idx, true
	}
	return nil, 0, false
}
