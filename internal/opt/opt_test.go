package opt

import (
	"strings"
	"testing"
	"testing/quick"

	"dcelens/internal/ast"
	"dcelens/internal/cgen"
	"dcelens/internal/instrument"
	"dcelens/internal/ir"
	"dcelens/internal/lower"
	"dcelens/internal/parser"
	"dcelens/internal/sema"
)

// buildIR parses, checks, and lowers a source fragment.
func buildIR(t *testing.T, src string) *ir.Module {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sema.Check(prog); err != nil {
		t.Fatal(err)
	}
	m, err := lower.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runPasses applies the passes and verifies after each.
func runPasses(t *testing.T, m *ir.Module, o Options, passes ...Pass) {
	t.Helper()
	o.VerifyEachPass = true
	if err := Pipeline(m, o, passes, 3); err != nil {
		t.Fatalf("%v\n%s", err, m)
	}
}

// exec runs the module.
func exec(t *testing.T, m *ir.Module) *ir.ExecResult {
	t.Helper()
	res, err := ir.Execute(m, ir.ExecOptions{})
	if err != nil {
		t.Fatalf("exec: %v\n%s", err, m)
	}
	return res
}

// markerSurvives reports whether a call to name is still present in the IR.
func markerSurvives(m *ir.Module, name string) bool {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Callee != nil && in.Callee.Name == name {
					return true
				}
			}
		}
	}
	return false
}

// corePasses is the minimal useful schedule used by many tests.
func corePasses() []Pass {
	return []Pass{Mem2Reg, SCCP, InstCombine, SimplifyCFG, DCE}
}

func TestMem2RegPromotesScalars(t *testing.T) {
	m := buildIR(t, `
int main(void) {
  int x = 3;
  int y = x + 4;
  return y;
}`)
	runPasses(t, m, Options{}, Mem2Reg)
	f := m.LookupFunc("main")
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca {
				t.Fatalf("alloca survived promotion:\n%s", f)
			}
		}
	}
	if got := exec(t, m); got.ExitCode != 7 {
		t.Fatalf("exit %d, want 7", got.ExitCode)
	}
}

func TestMem2RegKeepsArrays(t *testing.T) {
	m := buildIR(t, `
int main(void) {
  int a[4] = {1, 2, 3, 4};
  return a[2];
}`)
	runPasses(t, m, Options{}, Mem2Reg)
	f := m.LookupFunc("main")
	found := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("array alloca should not be promoted")
	}
	if got := exec(t, m); got.ExitCode != 3 {
		t.Fatalf("exit %d, want 3", got.ExitCode)
	}
}

func TestMem2RegLoopPhi(t *testing.T) {
	m := buildIR(t, `
int main(void) {
  int s = 0;
  for (int i = 0; i < 5; i++) s += i;
  return s;
}`)
	runPasses(t, m, Options{}, Mem2Reg)
	if got := exec(t, m); got.ExitCode != 10 {
		t.Fatalf("exit %d, want 10", got.ExitCode)
	}
	// There must be loop phis now.
	phis := 0
	for _, b := range m.LookupFunc("main").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				phis++
			}
		}
	}
	if phis == 0 {
		t.Fatal("expected phis after promotion of loop variables")
	}
}

func TestSCCPFoldsConstantBranch(t *testing.T) {
	m := buildIR(t, `
void DCEMarker0(void);
int main(void) {
  int c = 0;
  int d = c * 10;
  if (d) {
    DCEMarker0();
  }
  return d;
}`)
	runPasses(t, m, Options{}, corePasses()...)
	if markerSurvives(m, "DCEMarker0") {
		t.Fatalf("SCCP+simplifycfg failed to remove dead marker:\n%s", m)
	}
	if got := exec(t, m); got.ExitCode != 0 {
		t.Fatalf("exit %d, want 0", got.ExitCode)
	}
}

func TestSCCPPointerComparison(t *testing.T) {
	src := `
void DCEMarker0(void);
char a;
char b[2];
int main(void) {
  char *c = &a;
  char *d = &b[1];
  if (c == d) {
    DCEMarker0();
  }
  return 0;
}`
	// With the nonzero-offset folding knob (GCC-like): eliminated.
	m := buildIR(t, src)
	runPasses(t, m, Options{FoldPtrCmpNonzeroOffset: true}, corePasses()...)
	if markerSurvives(m, "DCEMarker0") {
		t.Fatalf("pointer comparison not folded with knob on:\n%s", m)
	}
	// Without it (LLVM EarlyCSE limitation, paper Listing 3): missed.
	m2 := buildIR(t, src)
	runPasses(t, m2, Options{FoldPtrCmpNonzeroOffset: false}, corePasses()...)
	if !markerSurvives(m2, "DCEMarker0") {
		t.Fatalf("pointer comparison folded despite knob off (should reproduce the LLVM miss)")
	}
	// Zero offsets fold under either setting.
	src0 := strings.Replace(src, "&b[1]", "&b[0]", 1)
	m3 := buildIR(t, src0)
	runPasses(t, m3, Options{FoldPtrCmpNonzeroOffset: false}, corePasses()...)
	if markerSurvives(m3, "DCEMarker0") {
		t.Fatalf("zero-offset pointer comparison should fold even without the knob")
	}
}

func TestInstCombineIdentities(t *testing.T) {
	m := buildIR(t, `
int main(void) {
  int x = 5;
  int a = x + 0;
  int b = a * 1;
  int c = b - b;
  int d = c | 0;
  int e = d ^ d;
  int f = (x == x);
  return e + f;
}`)
	runPasses(t, m, Options{}, corePasses()...)
	if got := exec(t, m); got.ExitCode != 1 {
		t.Fatalf("exit %d, want 1", got.ExitCode)
	}
	// Everything should fold to a single constant return.
	f := m.LookupFunc("main")
	nonTrivial := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBin {
				nonTrivial++
			}
		}
	}
	if nonTrivial != 0 {
		t.Fatalf("arithmetic not fully folded:\n%s", f)
	}
}

func TestSimplifyCFGMergesBlocks(t *testing.T) {
	m := buildIR(t, `
int main(void) {
  int x = 1;
  if (x) {
    x = 2;
  }
  return x;
}`)
	runPasses(t, m, Options{}, corePasses()...)
	f := m.LookupFunc("main")
	if len(f.Blocks) != 1 {
		t.Fatalf("expected a single block after simplification, got %d:\n%s", len(f.Blocks), f)
	}
	if got := exec(t, m); got.ExitCode != 2 {
		t.Fatalf("exit %d, want 2", got.ExitCode)
	}
}

func TestDCERemovesUnusedChains(t *testing.T) {
	m := buildIR(t, `
static int g = 4;
int main(void) {
  int unused = g * 17 + 3;
  return 0;
}`)
	runPasses(t, m, Options{}, Mem2Reg, DCE)
	f := m.LookupFunc("main")
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBin || in.Op == ir.OpLoad {
				t.Fatalf("dead computation survived:\n%s", f)
			}
		}
	}
}

// TestCorePassesPreserveSemantics is the central compiler-correctness
// property: the core pipeline must not change observable behaviour of any
// generated, instrumented program.
func TestCorePassesPreserveSemantics(t *testing.T) {
	checkSemanticsPreserved(t, Options{FoldPtrCmpNonzeroOffset: true}, corePasses(), 30)
}

// checkSemanticsPreserved compiles random instrumented programs with and
// without the given schedule and compares all observables. Shared by the
// per-pass property tests.
func checkSemanticsPreserved(t *testing.T, o Options, passes []Pass, n int) {
	t.Helper()
	o.VerifyEachPass = true
	f := func(seed int64) bool {
		prog := cgen.Generate(cgen.DefaultConfig(seed))
		ins, err := instrument.Instrument(prog, instrument.Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		m0, err := lower.Lower(ins.Prog)
		if err != nil {
			t.Logf("seed %d: lower: %v", seed, err)
			return false
		}
		want, err := ir.Execute(m0, ir.ExecOptions{})
		if err != nil {
			t.Logf("seed %d: exec unopt: %v", seed, err)
			return false
		}
		m1, err := lower.Lower(ins.Prog)
		if err != nil {
			return false
		}
		if err := Pipeline(m1, o, passes, 3); err != nil {
			t.Logf("seed %d: pipeline: %v", seed, err)
			return false
		}
		got, err := ir.Execute(m1, ir.ExecOptions{})
		if err != nil {
			t.Logf("seed %d: exec opt: %v", seed, err)
			return false
		}
		if got.ExitCode != want.ExitCode || got.Checksum != want.Checksum {
			t.Logf("seed %d: semantics changed (exit %d->%d checksum %x->%x)\nprogram:\n%s",
				seed, want.ExitCode, got.ExitCode, want.Checksum, got.Checksum, ast.Print(ins.Prog))
			return false
		}
		// Optimization may only remove extern calls from dead code: every
		// executed call count must be preserved exactly (markers in live
		// code must run the same number of times).
		for name, c := range want.ExternCalls {
			if got.ExternCalls[name] != c {
				t.Logf("seed %d: extern %s count changed %d -> %d", seed, name, c, got.ExternCalls[name])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}
