package opt

import (
	"dcelens/internal/ir"
)

// DCE removes instructions whose results are unused and that have no side
// effects (including loads — MiniC loads cannot trap at the IR level).
// This is the sink transformation of the whole reproduction: every other
// pass exists to make more code eligible for this one and for SimplifyCFG's
// unreachable-block removal.
var DCE = Pass{Name: "dce", Fn: func(f *ir.Func, o Options) bool { return dceFunc(f) }}

func dceFunc(f *ir.Func) bool {
	// Use counts over the whole function, dense by instruction ID —
	// replacing the pointer-keyed maps that made this pass one of the
	// hottest allocation sites in the campaign.
	n := f.NumValues()
	uses := make([]int32, n)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				uses[a.ID]++
			}
		}
	}
	deletable := func(in *ir.Instr) bool {
		if in.HasSideEffects() {
			return false
		}
		if in.Op == ir.OpLoad || in.Op == ir.OpFreeze {
			return true // loads are pure in MiniC; freeze is a value copy
		}
		return in.IsPure()
	}

	changed := false
	// Worklist to cascade: removing an instruction may zero its operands'
	// use counts.
	var work []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if uses[in.ID] == 0 && in.Typ != nil && deletable(in) {
				work = append(work, in)
			}
		}
	}
	if len(work) == 0 {
		return false
	}
	dead := make([]bool, n)
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		if dead[in.ID] {
			continue
		}
		dead[in.ID] = true
		changed = true
		for _, a := range in.Args {
			uses[a.ID]--
			if uses[a.ID] == 0 && a.Typ != nil && deletable(a) {
				work = append(work, a)
			}
		}
	}
	if !changed {
		return false
	}
	for _, b := range f.Blocks {
		keep := b.Instrs[:0]
		for _, in := range b.Instrs {
			if !dead[in.ID] {
				keep = append(keep, in)
			}
		}
		b.Instrs = keep
	}
	return true
}
