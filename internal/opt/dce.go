package opt

import (
	"fmt"

	"dcelens/internal/ir"
)

// DCE removes instructions whose results are unused and that have no side
// effects (including loads — MiniC loads cannot trap at the IR level).
// This is the sink transformation of the whole reproduction: every other
// pass exists to make more code eligible for this one and for SimplifyCFG's
// unreachable-block removal.
var DCE = Pass{Name: "dce", Fn: dceFunc}

func dceFunc(f *ir.Func, o Options) bool {
	if o.RemarksOn() {
		// Every kept external call is a Missed(side-effects) decision:
		// opaque side effects pin it regardless of use counts. Markers are
		// external calls, so this is what anchors each surviving marker's
		// nearest-miss chain — the first dce visit of any function with a
		// surviving marker records why dce itself cannot touch it.
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Callee != nil && in.Callee.External {
					o.missed(f, "call "+in.Callee.Name, ReasonSideEffects,
						"external call: opaque side effects keep it live")
				}
			}
		}
	}
	// Use counts over the whole function, dense by instruction ID —
	// replacing the pointer-keyed maps that made this pass one of the
	// hottest allocation sites in the campaign.
	n := f.NumValues()
	uses := make([]int32, n)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				uses[a.ID]++
			}
		}
	}
	deletable := func(in *ir.Instr) bool {
		if in.HasSideEffects() {
			return false
		}
		if in.Op == ir.OpLoad || in.Op == ir.OpFreeze {
			return true // loads are pure in MiniC; freeze is a value copy
		}
		return in.IsPure()
	}

	changed := false
	// Worklist to cascade: removing an instruction may zero its operands'
	// use counts.
	var work []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if uses[in.ID] == 0 && in.Typ != nil && deletable(in) {
				work = append(work, in)
			}
		}
	}
	if len(work) == 0 {
		return false
	}
	dead := make([]bool, n)
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		if dead[in.ID] {
			continue
		}
		dead[in.ID] = true
		changed = true
		for _, a := range in.Args {
			uses[a.ID]--
			if uses[a.ID] == 0 && a.Typ != nil && deletable(a) {
				work = append(work, a)
			}
		}
	}
	if !changed {
		return false
	}
	removed := 0
	for _, b := range f.Blocks {
		keep := b.Instrs[:0]
		for _, in := range b.Instrs {
			if !dead[in.ID] {
				keep = append(keep, in)
			} else {
				removed++
			}
		}
		b.Instrs = keep
	}
	if o.RemarksOn() {
		o.applied(f, fmt.Sprintf("removed %d dead values", removed), "")
	}
	return true
}
