package opt

import (
	"fmt"

	"dcelens/internal/ir"
	"dcelens/internal/types"
)

// Inline substitutes the bodies of small internal functions at their call
// sites. Inlining is what turns the interprocedural examples of the paper
// into intraprocedural ones that SCCP/GVN can finish off; several of the
// paper's bisected regressions live in inlining heuristics (Table 4).
var Inline = Pass{Name: "inline", Run: inline}

func inline(m *ir.Module, o Options, inv *Invalidation) bool {
	if o.InlineBudget <= 0 {
		return false
	}
	recursive := recursiveFuncs(m)
	changed := false
	for _, caller := range m.Funcs {
		if caller.External {
			continue
		}
		grown := 0
		// Snapshot call sites; inlining rewrites blocks under us.
		for {
			call := findInlinableCall(caller, o, recursive)
			if call == nil {
				break
			}
			if grown > 4*o.InlineBudget {
				if o.RemarksOn() {
					o.missed(caller, "call "+call.Callee.Name, ReasonSizeThreshold,
						fmt.Sprintf("caller growth cap reached (%d > %d)", grown, 4*o.InlineBudget))
				}
				break
			}
			call.Callee.WasInlined = true
			inlineCall(caller, call)
			grown += funcSize(call.Callee)
			changed = true
			if o.RemarksOn() {
				o.applied(caller, "call "+call.Callee.Name, "inlined the callee body at the call site")
			}
			// Splicing mutates only the caller; callee bodies are read,
			// never written, so callers are the precise invalidation set.
			inv.Func(caller)
		}
	}
	return changed
}

func funcSize(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// recursiveFuncs returns functions that participate in call-graph cycles.
func recursiveFuncs(m *ir.Module) map[*ir.Func]bool {
	// Simple transitive-reachability check per function.
	callees := map[*ir.Func][]*ir.Func{}
	for _, f := range m.Funcs {
		seen := map[*ir.Func]bool{}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Callee != nil && !in.Callee.External && !seen[in.Callee] {
					seen[in.Callee] = true
					callees[f] = append(callees[f], in.Callee)
				}
			}
		}
	}
	rec := map[*ir.Func]bool{}
	for _, f := range m.Funcs {
		seen := map[*ir.Func]bool{}
		var reach func(g *ir.Func) bool
		reach = func(g *ir.Func) bool {
			for _, c := range callees[g] {
				if c == f {
					return true
				}
				if !seen[c] {
					seen[c] = true
					if reach(c) {
						return true
					}
				}
			}
			return false
		}
		if reach(f) {
			rec[f] = true
		}
	}
	return rec
}

func findInlinableCall(caller *ir.Func, o Options, recursive map[*ir.Func]bool) *ir.Instr {
	for _, b := range caller.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpCall || in.Callee == nil {
				continue
			}
			c := in.Callee
			if c.External || len(c.Blocks) == 0 {
				continue
			}
			if c == caller || recursive[c] {
				if o.RemarksOn() {
					o.missed(caller, "call "+c.Name, ReasonRecursive,
						"the callee participates in a call-graph cycle")
				}
				continue
			}
			if size := funcSize(c); size > o.InlineBudget {
				if o.RemarksOn() {
					o.missed(caller, "call "+c.Name, ReasonSizeThreshold,
						fmt.Sprintf("callee size %d exceeds the inline budget %d", size, o.InlineBudget))
				}
				continue
			}
			return in
		}
	}
	return nil
}

// inlineCall splices callee's body into caller at the call site.
func inlineCall(caller *ir.Func, call *ir.Instr) {
	callee := call.Callee
	b := call.Block

	// 1. Split b at the call: everything after it moves to cont, which
	// inherits b's terminator and successor edges.
	cont := caller.NewBlock()
	idx := -1
	for i, in := range b.Instrs {
		if in == call {
			idx = i
			break
		}
	}
	cont.Instrs = append(cont.Instrs, b.Instrs[idx+1:]...)
	for _, in := range cont.Instrs {
		in.Block = cont
	}
	b.Instrs = b.Instrs[:idx] // also drops the call itself
	// Successors of the old terminator now come from cont.
	if t := cont.Term(); t != nil {
		for _, s := range t.Targets {
			for i, p := range s.Preds {
				if p == b {
					s.Preds[i] = cont
				}
			}
			for _, in := range s.Instrs {
				if in.Op != ir.OpPhi {
					break
				}
				for i, pb := range in.PhiPreds {
					if pb == b {
						in.PhiPreds[i] = cont
					}
				}
			}
		}
	}

	// 2. Clone callee blocks.
	blockMap := map[*ir.Block]*ir.Block{}
	for _, cb := range callee.Blocks {
		blockMap[cb] = caller.NewBlock()
	}
	valMap := map[*ir.Instr]*ir.Instr{}
	type retEdge struct {
		val   *ir.Instr // mapped return value (nil for void)
		block *ir.Block
	}
	var rets []retEdge

	mapVal := func(v *ir.Instr) *ir.Instr {
		if nv, ok := valMap[v]; ok {
			return nv
		}
		return v // values defined in caller (call args) are used directly
	}

	for _, cb := range callee.Blocks {
		nb := blockMap[cb]
		for _, in := range cb.Instrs {
			switch in.Op {
			case ir.OpParam:
				valMap[in] = call.Args[in.ParamIdx]
				continue
			case ir.OpRet:
				var rv *ir.Instr
				if len(in.Args) > 0 {
					rv = mapVal(in.Args[0])
				}
				rets = append(rets, retEdge{rv, nb})
				br := nb.NewInstr(ir.OpBr, nil)
				br.Targets = []*ir.Block{cont}
				nb.Instrs = append(nb.Instrs, br)
				continue
			}
			ni := nb.NewInstr(in.Op, in.Typ)
			ni.IntVal = in.IntVal
			ni.Global = in.Global
			ni.Callee = in.Callee
			ni.ParamIdx = in.ParamIdx
			ni.Count = in.Count
			ni.BinOp = in.BinOp
			ni.Widened = in.Widened
			for _, a := range in.Args {
				ni.Args = append(ni.Args, mapVal(a))
			}
			for _, t := range in.Targets {
				ni.Targets = append(ni.Targets, blockMap[t])
			}
			for _, pp := range in.PhiPreds {
				ni.PhiPreds = append(ni.PhiPreds, blockMap[pp])
			}
			valMap[in] = ni
			nb.Instrs = append(nb.Instrs, ni)
		}
	}

	// Phi args may have been cloned before their operands (back edges), and
	// a return in an early-ordered block can reference a value from a
	// later-ordered block (block list order is not topological); remap any
	// stale references now — including the captured return values, which
	// flow into the caller's continuation.
	for _, cb := range callee.Blocks {
		nb := blockMap[cb]
		for _, in := range nb.Instrs {
			for i, a := range in.Args {
				if nv, ok := valMap[a]; ok {
					in.Args[i] = nv
				}
			}
		}
	}
	for i := range rets {
		if rets[i].val != nil {
			if nv, ok := valMap[rets[i].val]; ok {
				rets[i].val = nv
			}
		}
	}

	// 3. b jumps into the cloned entry.
	br := b.NewInstr(ir.OpBr, nil)
	br.Targets = []*ir.Block{blockMap[callee.Entry()]}
	b.Instrs = append(b.Instrs, br)

	// 4. The call's result value.
	if call.Typ != nil {
		var result *ir.Instr
		switch len(rets) {
		case 0:
			// The callee never returns (e.g. an infinite loop): cont is
			// unreachable; materialize a placeholder for its dead uses.
			if call.Typ.Kind == types.Pointer {
				result = cont.NewInstr(ir.OpNull, call.Typ)
			} else {
				result = cont.NewInstr(ir.OpConst, call.Typ)
			}
			cont.Instrs = append([]*ir.Instr{result}, cont.Instrs...)
		case 1:
			result = rets[0].val
		default:
			phi := cont.NewInstr(ir.OpPhi, call.Typ)
			for _, r := range rets {
				phi.Args = append(phi.Args, r.val)
				phi.PhiPreds = append(phi.PhiPreds, r.block)
			}
			cont.Instrs = append([]*ir.Instr{phi}, cont.Instrs...)
			result = phi
		}
		ir.ReplaceAllUses(call, result)
	}

	caller.RecomputePreds()
}
