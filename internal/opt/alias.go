package opt

import (
	"dcelens/internal/ir"
)

// Loc is a resolved memory location: a base object (global, alloca, or an
// SSA pointer of unknown provenance) plus an element offset when it is
// constant.
type Loc struct {
	G        *ir.Global // non-nil for global storage
	A        *ir.Instr  // non-nil for a known alloca
	Base     *ir.Instr  // unknown-provenance base (load result, param, phi, select)
	Off      int64
	OffKnown bool
}

// ResolveLoc traces an address value through GEP chains to its base.
func ResolveLoc(addr *ir.Instr) Loc {
	off := int64(0)
	offKnown := true
	for addr.Op == ir.OpGEP {
		if idx, ok := isConst(addr.Args[1]); ok {
			off += idx
		} else {
			offKnown = false
		}
		addr = addr.Args[0]
	}
	switch addr.Op {
	case ir.OpGlobalAddr:
		return Loc{G: addr.Global, Off: off, OffKnown: offKnown}
	case ir.OpAlloca:
		return Loc{A: addr, Off: off, OffKnown: offKnown}
	default:
		return Loc{Base: addr, Off: off, OffKnown: offKnown}
	}
}

// AliasCtx caches per-function exposure information for alias queries.
type AliasCtx struct {
	Level   AliasLevel
	exposed []bool // dense by instruction ID at context-build time
}

// NewAliasCtx builds an alias-query context for f at the given precision.
// ComputeEscapes must have run on the module for global exposure to be
// accurate.
func NewAliasCtx(f *ir.Func, level AliasLevel) *AliasCtx {
	return &AliasCtx{Level: level, exposed: exposedValues(f)}
}

// isExposed reports whether a (an alloca) was address-exposed when the
// context was built. Values created after that point are out of range and
// report false — passes never create allocas mid-flight, so every queried
// base predates the context.
func (c *AliasCtx) isExposed(a *ir.Instr) bool {
	return a.ID < len(c.exposed) && c.exposed[a.ID]
}

// MayAlias reports whether two locations can overlap, at the configured
// precision. AliasConservative answers "maybe" for everything involving a
// pointer of unknown provenance — the degraded mode a version-history
// commit switches gcc-sim's -O3 pipeline into (paper Listing 9c).
// AliasBaseObject additionally exploits AddrExposed: an unknown pointer can
// only point at address-exposed objects.
func (c *AliasCtx) MayAlias(a, b Loc) bool {
	level := c.Level
	// Identical known bases: decide by offsets.
	switch {
	case a.G != nil && b.G != nil:
		if a.G != b.G {
			return false // distinct globals never overlap
		}
		return sameOrUnknownOff(a, b)
	case a.A != nil && b.A != nil:
		if a.A != b.A {
			return false
		}
		return sameOrUnknownOff(a, b)
	case (a.G != nil && b.A != nil) || (a.A != nil && b.G != nil):
		return false // globals and stack slots are distinct storage
	}

	// At least one side has unknown provenance.
	if level == AliasConservative {
		return true
	}
	known, unknown := a, b
	if a.Base != nil && b.Base == nil {
		known, unknown = b, a
	}
	switch {
	case known.G != nil:
		return known.G.AddrExposed
	case known.A != nil:
		return c.isExposed(known.A)
	default:
		// both unknown: same base SSA value → offset logic; different
		// bases → maybe.
		if a.Base == b.Base {
			return sameOrUnknownOff(a, b)
		}
		_ = unknown
		return true
	}
}

// MustAlias reports whether two locations are certainly the same slot.
func MustAlias(a, b Loc) bool {
	if !a.OffKnown || !b.OffKnown || a.Off != b.Off {
		return false
	}
	switch {
	case a.G != nil:
		return a.G == b.G
	case a.A != nil:
		return a.A == b.A
	case a.Base != nil:
		return a.Base == b.Base
	}
	return false
}

func sameOrUnknownOff(a, b Loc) bool {
	if a.OffKnown && b.OffKnown {
		return a.Off == b.Off
	}
	return true
}
