// Package opt implements the optimization passes shared by both compiler
// personalities.
//
// Every pass is a function from (module, options) to a changed-flag. The
// two personalities (gcc-sim, llvm-sim) differ only in which passes run, in
// what order, and with which Options knobs — exactly the axes along which
// the paper's bisected regressions vary (pass management, analysis
// precision, pass interactions). See internal/pipeline for the pass
// schedules and DESIGN.md for the mapping from knobs to paper findings.
package opt

import (
	"fmt"
	"reflect"
	"time"

	"dcelens/internal/ir"
)

// GlobalPropLevel selects the precision of the interprocedural global value
// analysis (the paper's central example of diverging compiler strength:
// GCC's analysis is flow-insensitive, Listing 4a/6a).
type GlobalPropLevel int

const (
	// GlobalPropNone disables the analysis.
	GlobalPropNone GlobalPropLevel = iota
	// GlobalPropNoStores folds loads of a non-escaping internal global only
	// when the module contains no store to it at all (GCC-like,
	// flow-insensitive).
	GlobalPropNoStores
	// GlobalPropSameConst additionally folds when every store writes the
	// same constant the initializer set (LLVM >= 3.8 behaviour).
	GlobalPropSameConst
	// GlobalPropFlowAware additionally lets loads that no store can reach
	// (on any CFG path) observe the initializer (LLVM <= 3.7 behaviour —
	// its loss is the regression in paper Listing 6a).
	GlobalPropFlowAware
)

// AliasLevel selects pointer-analysis precision.
type AliasLevel int

const (
	// AliasConservative: only identical-global and distinct-direct-global
	// queries are answered; anything involving loaded pointers may alias.
	AliasConservative AliasLevel = iota
	// AliasBaseObject: distinct base objects (globals, allocas) never
	// alias; loaded pointers may alias only address-taken objects.
	AliasBaseObject
)

// Options are the tunable knobs of the middle-end. Each personality/version
// is a distinct Options value; commits in the version history mutate single
// fields (see internal/pipeline/history.go).
type Options struct {
	GlobalProp GlobalPropLevel
	Alias      AliasLevel

	// FoldPtrCmpNonzeroOffset folds &a == &b+k for k != 0 (distinct
	// objects never compare equal). LLVM's EarlyCSE historically folded
	// only the k == 0 case — paper Listing 3.
	FoldPtrCmpNonzeroOffset bool

	// ShiftNonzeroRelation enables the VRP relation
	// "x<<y != 0 when x != 0 and the shift provably loses no bits"
	// (paper Listing 9a, fixed in GCC by 5f9ccf17de7).
	ShiftNonzeroRelation bool

	// ConstArrayLoadFold folds loads with unknown index from a never-written
	// array whose elements are all the same constant (paper Listing 9f).
	ConstArrayLoadFold bool

	// LoadForwarding enables store-to-load forwarding in GVN.
	LoadForwarding bool

	// WidenPointerLoopStores re-types pointer stores in loops (the
	// "vectorize pointer data as unsigned long" artifact of paper Listing
	// 9e); widened stores defeat store-to-load forwarding.
	WidenPointerLoopStores bool

	// AggressiveUnswitch unswitches loops even when the resulting select
	// pattern blocks later constant propagation (the LLVM loop-unswitching
	// regression of paper Listings 7/8a).
	AggressiveUnswitch bool

	// KeepSRAClones retains specialized argument-promotion clones that are
	// never called (the interprocedural-SRA leftover of paper Listing 9b).
	KeepSRAClones bool

	// InlineBudget is the maximum instruction count of an inlinee; 0
	// disables inlining.
	InlineBudget int

	// UnrollMaxTrip fully unrolls counted loops with trip count <= this;
	// 0 disables unrolling.
	UnrollMaxTrip int

	// RedundantStoreElim removes stores that provably rewrite the value a
	// location already holds (GCC misses this in paper Listings 1c/4a).
	RedundantStoreElim bool

	// GlobalLocalize demotes non-escaping internal globals whose accesses
	// are confined to main into stack slots (LLVM GlobalOpt's localization;
	// see LocalizeGlobals). The decisive llvm-sim advantage on Csmith-style
	// corpora.
	GlobalLocalize bool

	// PessimisticEscape makes the escape analysis assume every global
	// escapes (ablation hook: quantifies how much of the oracle's power
	// rests on knowing that opaque marker calls cannot clobber private
	// statics — see BenchmarkAblationNoEscapeAnalysis).
	PessimisticEscape bool

	// VerifyEachPass runs the SSA verifier after every pass instead of
	// once per Pipeline call — what an assertions-enabled compiler build
	// does. Tests enable it; production-style campaigns rely on the final
	// verification plus the semantic execution checks.
	VerifyEachPass bool
}

// Pass is one transformation or analysis over a module.
type Pass struct {
	Name string
	Run  func(m *ir.Module, o Options) bool
}

// Observer watches pass execution inside a Pipeline run. A nil observer
// disables observation at the cost of one pointer comparison per pass, so
// untraced compilations are indistinguishable from the pre-observer
// pipeline. internal/trace provides the standard implementation (per-pass
// profiles and marker provenance); the interface lives here, argument-only,
// so that trace can satisfy it without opt importing trace.
type Observer interface {
	// BeginPipeline sees the module before the first pass runs.
	BeginPipeline(m *ir.Module)
	// AfterPass sees the module after each executed pass instance:
	// the pass name, its position in the schedule, the iteration of the
	// fixpoint loop, whether the pass reported a change, and its wall time.
	AfterPass(m *ir.Module, pass string, scheduleIndex, iteration int, changed bool, d time.Duration)
}

// multiObserver fans one observation out to several observers in order.
type multiObserver []Observer

func (mo multiObserver) BeginPipeline(m *ir.Module) {
	for _, o := range mo {
		o.BeginPipeline(m)
	}
}

func (mo multiObserver) AfterPass(m *ir.Module, pass string, scheduleIndex, iteration int, changed bool, d time.Duration) {
	for _, o := range mo {
		o.AfterPass(m, pass, scheduleIndex, iteration, changed, d)
	}
}

// Observers composes observers into one, dropping nils — including typed
// nils (a nil *trace.Recorder or *metricsObserver boxed into the
// interface), which would otherwise both survive the composition and crash
// on first call. Zero survivors yield a true nil Observer, preserving the
// unobserved fast path: ObservedPipeline's nil check short-circuits and an
// uninstrumented run pays no interface-call cost. A single survivor is
// returned unwrapped. The harness chains its watchdog/fault observer with
// the trace recorder and the metrics pass collector through this.
func Observers(obs ...Observer) Observer {
	var out multiObserver
	for _, o := range obs {
		if o == nil {
			continue
		}
		if v := reflect.ValueOf(o); v.Kind() == reflect.Pointer && v.IsNil() {
			continue
		}
		out = append(out, o)
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// Pipeline runs passes in order until a fixpoint or maxIters repetitions of
// the whole schedule, whichever comes first. Real pass managers run fixed
// schedules; iterating the schedule a couple of times approximates the
// repeated pass groups (e.g. instcombine/simplifycfg interleavings) that
// production pipelines contain.
func Pipeline(m *ir.Module, o Options, passes []Pass, maxIters int) error {
	return ObservedPipeline(m, o, passes, maxIters, nil)
}

// ObservedPipeline is Pipeline with an observer attached to every executed
// pass instance; obs may be nil.
func ObservedPipeline(m *ir.Module, o Options, passes []Pass, maxIters int, obs Observer) error {
	if maxIters < 1 {
		maxIters = 1
	}
	if obs != nil {
		obs.BeginPipeline(m)
	}
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, p := range passes {
			var start time.Time
			if obs != nil {
				start = time.Now()
			}
			passChanged := p.Run(m, o)
			if passChanged {
				changed = true
			}
			if obs != nil {
				obs.AfterPass(m, p.Name, i, iter, passChanged, time.Since(start))
			}
			if o.VerifyEachPass {
				if err := ir.Verify(m); err != nil {
					return fmt.Errorf("opt: after pass %s (iteration %d): %w", p.Name, iter, err)
				}
			}
		}
		if !changed {
			break
		}
	}
	if !o.VerifyEachPass {
		if err := ir.Verify(m); err != nil {
			return fmt.Errorf("opt: after pipeline: %w", err)
		}
	}
	return nil
}

// forEachDefined applies f to every function with a body.
func forEachDefined(m *ir.Module, f func(*ir.Func) bool) bool {
	changed := false
	for _, fn := range m.Funcs {
		if fn.External {
			continue
		}
		if f(fn) {
			changed = true
		}
	}
	return changed
}
