// Package opt implements the optimization passes shared by both compiler
// personalities.
//
// Most passes are function-scoped: a pure function of one body plus
// module-level facts. Interprocedural passes declare themselves
// module-scoped and report which functions they changed. The pass manager
// (ObservedPipeline) exploits the split with per-function dirty tracking:
// a pass instance re-visits a function only when something changed it since
// the same pass last saw it, so clean functions are never re-scanned. The
// two personalities (gcc-sim, llvm-sim) differ only in which passes run, in
// what order, and with which Options knobs — exactly the axes along which
// the paper's bisected regressions vary (pass management, analysis
// precision, pass interactions). See internal/pipeline for the pass
// schedules and DESIGN.md for the mapping from knobs to paper findings.
package opt

import (
	"fmt"
	"reflect"
	"time"

	"dcelens/internal/ir"
)

// GlobalPropLevel selects the precision of the interprocedural global value
// analysis (the paper's central example of diverging compiler strength:
// GCC's analysis is flow-insensitive, Listing 4a/6a).
type GlobalPropLevel int

const (
	// GlobalPropNone disables the analysis.
	GlobalPropNone GlobalPropLevel = iota
	// GlobalPropNoStores folds loads of a non-escaping internal global only
	// when the module contains no store to it at all (GCC-like,
	// flow-insensitive).
	GlobalPropNoStores
	// GlobalPropSameConst additionally folds when every store writes the
	// same constant the initializer set (LLVM >= 3.8 behaviour).
	GlobalPropSameConst
	// GlobalPropFlowAware additionally lets loads that no store can reach
	// (on any CFG path) observe the initializer (LLVM <= 3.7 behaviour —
	// its loss is the regression in paper Listing 6a).
	GlobalPropFlowAware
)

// AliasLevel selects pointer-analysis precision.
type AliasLevel int

const (
	// AliasConservative: only identical-global and distinct-direct-global
	// queries are answered; anything involving loaded pointers may alias.
	AliasConservative AliasLevel = iota
	// AliasBaseObject: distinct base objects (globals, allocas) never
	// alias; loaded pointers may alias only address-taken objects.
	AliasBaseObject
)

// Options are the tunable knobs of the middle-end. Each personality/version
// is a distinct Options value; commits in the version history mutate single
// fields (see internal/pipeline/history.go).
type Options struct {
	GlobalProp GlobalPropLevel
	Alias      AliasLevel

	// FoldPtrCmpNonzeroOffset folds &a == &b+k for k != 0 (distinct
	// objects never compare equal). LLVM's EarlyCSE historically folded
	// only the k == 0 case — paper Listing 3.
	FoldPtrCmpNonzeroOffset bool

	// ShiftNonzeroRelation enables the VRP relation
	// "x<<y != 0 when x != 0 and the shift provably loses no bits"
	// (paper Listing 9a, fixed in GCC by 5f9ccf17de7).
	ShiftNonzeroRelation bool

	// ConstArrayLoadFold folds loads with unknown index from a never-written
	// array whose elements are all the same constant (paper Listing 9f).
	ConstArrayLoadFold bool

	// LoadForwarding enables store-to-load forwarding in GVN.
	LoadForwarding bool

	// WidenPointerLoopStores re-types pointer stores in loops (the
	// "vectorize pointer data as unsigned long" artifact of paper Listing
	// 9e); widened stores defeat store-to-load forwarding.
	WidenPointerLoopStores bool

	// AggressiveUnswitch unswitches loops even when the resulting select
	// pattern blocks later constant propagation (the LLVM loop-unswitching
	// regression of paper Listings 7/8a).
	AggressiveUnswitch bool

	// KeepSRAClones retains specialized argument-promotion clones that are
	// never called (the interprocedural-SRA leftover of paper Listing 9b).
	KeepSRAClones bool

	// InlineBudget is the maximum instruction count of an inlinee; 0
	// disables inlining.
	InlineBudget int

	// UnrollMaxTrip fully unrolls counted loops with trip count <= this;
	// 0 disables unrolling.
	UnrollMaxTrip int

	// RedundantStoreElim removes stores that provably rewrite the value a
	// location already holds (GCC misses this in paper Listings 1c/4a).
	RedundantStoreElim bool

	// GlobalLocalize demotes non-escaping internal globals whose accesses
	// are confined to main into stack slots (LLVM GlobalOpt's localization;
	// see LocalizeGlobals). The decisive llvm-sim advantage on Csmith-style
	// corpora.
	GlobalLocalize bool

	// PessimisticEscape makes the escape analysis assume every global
	// escapes (ablation hook: quantifies how much of the oracle's power
	// rests on knowing that opaque marker calls cannot clobber private
	// statics — see BenchmarkAblationNoEscapeAnalysis).
	PessimisticEscape bool

	// VerifyEachPass runs the SSA verifier after every pass instead of
	// once per Pipeline call — what an assertions-enabled compiler build
	// does. Tests enable it; production-style campaigns rely on the final
	// verification plus the semantic execution checks.
	VerifyEachPass bool

	// remarks carries the remark sink and the executing pass instance's
	// position (see remark.go). Set only by ObservedPipeline, and only
	// when the observer implements RemarkSink; nil otherwise, so every
	// emission helper is one pointer comparison on the uninstrumented
	// path. Unexported: it is pipeline plumbing, not a personality knob,
	// and must never differ between Options values being compared.
	remarks *remarkCtx
}

// Invalidation is how a module-scoped pass tells the pass manager which
// functions it changed, so dirty tracking stays exact across
// interprocedural transforms. Inline reports the callers it spliced into,
// localization reports main, pure removals (GlobalDCE) report nothing.
type Invalidation struct {
	funcs []*ir.Func
	all   bool
	facts bool
}

// Func marks one function as changed by the pass.
func (inv *Invalidation) Func(f *ir.Func) {
	if f != nil {
		inv.funcs = append(inv.funcs, f)
	}
}

// All conservatively marks every function as changed.
func (inv *Invalidation) All() { inv.all = true }

// Facts records that module-level analysis facts (the escape flags on
// globals) changed, so passes that consume them must re-visit even bodies
// that did not change.
func (inv *Invalidation) Facts() { inv.facts = true }

// Pass is one transformation or analysis. Exactly one of Fn (function
// scope) or Run (module scope) is set.
type Pass struct {
	Name string

	// Fn is the function-scoped entry point; the pass manager sweeps it
	// over the defined functions that changed since this pass last saw
	// them.
	Fn func(f *ir.Func, o Options) bool

	// Pre runs once per instance of a function-scoped pass, before the
	// sweep — module-level analyses the sweep consumes (escape
	// recomputation). It returns true when the facts it maintains changed,
	// which forces the sweep to re-visit every function. The manager skips
	// Pre itself when nothing in the module changed since it last ran.
	Pre func(m *ir.Module, o Options) bool

	// Post runs after the sweep of a function-scoped pass — module-level
	// epilogues (GVN's cross-function store-to-load forwarding). Changed
	// functions are reported through inv.
	Post func(m *ir.Module, o Options, inv *Invalidation) bool

	// Run is the module-scoped entry point for interprocedural passes.
	// Changed functions are reported through inv; the manager skips the
	// whole pass when nothing in the module changed since its last run.
	Run func(m *ir.Module, o Options, inv *Invalidation) bool
}

// PassStats describes one executed pass instance to an Observer: the
// changed flag and wall time as before, plus the dirty-tracking outcome —
// how many defined functions the instance actually visited and how many it
// skipped as provably clean.
type PassStats struct {
	Changed  bool
	Duration time.Duration
	// FuncsVisited counts defined functions the pass scanned; a
	// module-scoped pass visits all of them or (when skipped) none.
	FuncsVisited int
	// FuncsSkipped counts defined functions skipped as unchanged since the
	// pass last saw them.
	FuncsSkipped int
}

// Observer watches pass execution inside a Pipeline run. A nil observer
// disables observation at the cost of one pointer comparison per pass, so
// untraced compilations are indistinguishable from the pre-observer
// pipeline. internal/trace provides the standard implementation (per-pass
// profiles and marker provenance); the interface lives here, argument-only,
// so that trace can satisfy it without opt importing trace.
type Observer interface {
	// BeginPipeline sees the module before the first pass runs.
	BeginPipeline(m *ir.Module)
	// AfterPass sees the module after each executed pass instance:
	// the pass name, its position in the schedule, the iteration of the
	// fixpoint loop, and the instance's stats (changed flag, wall time,
	// visited/skipped function counts). Skipped instances still report,
	// with zero visited functions — the schedule shape an observer sees is
	// independent of dirty tracking.
	AfterPass(m *ir.Module, pass string, scheduleIndex, iteration int, st PassStats)
}

// multiObserver fans one observation out to several observers in order.
type multiObserver []Observer

func (mo multiObserver) BeginPipeline(m *ir.Module) {
	for _, o := range mo {
		o.BeginPipeline(m)
	}
}

func (mo multiObserver) AfterPass(m *ir.Module, pass string, scheduleIndex, iteration int, st PassStats) {
	for _, o := range mo {
		o.AfterPass(m, pass, scheduleIndex, iteration, st)
	}
}

// multiRemarkObserver is the composition used when at least one composed
// observer is a RemarkSink: it fans remarks out to the sinks while the
// embedded multiObserver fans out the pass observations. The wrapper
// itself implements RemarkSink, so sink-ness survives nested composition
// (the traced compile path re-composes an already-composed observer with
// the trace recorder). Plain multiObserver deliberately does NOT implement
// RemarkSink — otherwise remark emission would switch on whenever any
// observer (the ever-present harness watchdog, say) is attached.
type multiRemarkObserver struct {
	multiObserver
	sinks []RemarkSink
}

func (mo *multiRemarkObserver) Remark(r Remark) {
	for _, s := range mo.sinks {
		s.Remark(r)
	}
}

// Observers composes observers into one, dropping nils — including typed
// nils (a nil *trace.Recorder or *metricsObserver boxed into the
// interface), which would otherwise both survive the composition and crash
// on first call. Zero survivors yield a true nil Observer, preserving the
// unobserved fast path: ObservedPipeline's nil check short-circuits and an
// uninstrumented run pays no interface-call cost. A single survivor is
// returned unwrapped. When several survive and at least one implements
// RemarkSink, the composition forwards remarks to exactly those sinks —
// the others never see them (no cross-contamination). The harness chains
// its watchdog/fault observer with the trace recorder, the metrics pass
// collector, and the remark collector through this.
func Observers(obs ...Observer) Observer {
	var out multiObserver
	for _, o := range obs {
		if o == nil {
			continue
		}
		if v := reflect.ValueOf(o); v.Kind() == reflect.Pointer && v.IsNil() {
			continue
		}
		out = append(out, o)
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	var sinks []RemarkSink
	for _, o := range out {
		if s, ok := o.(RemarkSink); ok {
			sinks = append(sinks, s)
		}
	}
	if len(sinks) > 0 {
		return &multiRemarkObserver{out, sinks}
	}
	return out
}

// Pipeline runs passes in order until a fixpoint or maxIters repetitions of
// the whole schedule, whichever comes first. Real pass managers run fixed
// schedules; iterating the schedule a couple of times approximates the
// repeated pass groups (e.g. instcombine/simplifycfg interleavings) that
// production pipelines contain.
func Pipeline(m *ir.Module, o Options, passes []Pass, maxIters int) error {
	return ObservedPipeline(m, o, passes, maxIters, nil)
}

// pipeState is the dirty-tracking bookkeeping of one ObservedPipeline call.
//
// Soundness of every skip rests on one property: a pass is a deterministic
// function of (the function body, the module-level facts it refreshes
// itself, Options), and no function-scoped pass reads another function's
// body. So a (pass, function) visit whose inputs are unchanged since the
// pass last visited reproduces its previous no-change outcome, and
// skipping it preserves the final IR, the changed flags, and the iteration
// count bit-for-bit.
type pipeState struct {
	// pid maps schedule positions to dense pass identities (by name):
	// instances of the same pass at different schedule positions share
	// dirty-tracking state, so the second instcombine of a schedule skips
	// functions the first one already left clean.
	pid  []int
	nIDs int

	// seen[f][id] holds 1 + the generation f had when pass id last started
	// a visit of f; 0 means never visited. The pass re-visits whenever the
	// current generation differs — including changes the pass itself made,
	// so one-transform-per-invocation passes (unroll, unswitch) keep
	// getting re-invoked until they settle.
	seen map[*ir.Func][]uint64

	// moduleGen counts module-state changes (any function generation bump,
	// any module-pass-reported change). lastRun/lastPre record it per pass
	// identity: a module pass or a Pre hook re-runs only when the module
	// changed since it last did.
	moduleGen uint64
	lastRun   []uint64
	lastPre   []uint64

	// factsGen counts changes to the module-level analysis facts (escape
	// flags); lastFacts records, per pass identity, the facts generation a
	// fact-consuming pass last swept under. A stale value forces the sweep
	// to re-visit every function even if no body changed.
	factsGen  uint64
	lastFacts []uint64
}

func newPipeState(passes []Pass) *pipeState {
	ps := &pipeState{
		pid:  make([]int, len(passes)),
		seen: make(map[*ir.Func][]uint64),
	}
	ids := make(map[string]int, len(passes))
	for i, p := range passes {
		id, ok := ids[p.Name]
		if !ok {
			id = len(ids)
			ids[p.Name] = id
		}
		ps.pid[i] = id
	}
	ps.nIDs = len(ids)
	ps.lastRun = make([]uint64, ps.nIDs)
	ps.lastPre = make([]uint64, ps.nIDs)
	ps.lastFacts = make([]uint64, ps.nIDs)
	ps.moduleGen = 1 // so the zero value of lastRun/lastPre means "never"
	ps.factsGen = 1
	return ps
}

func (ps *pipeState) seenOf(f *ir.Func) []uint64 {
	sn := ps.seen[f]
	if sn == nil {
		sn = make([]uint64, ps.nIDs)
		ps.seen[f] = sn
	}
	return sn
}

// applyInvalidation folds a module pass's report into the tracking state.
func (ps *pipeState) applyInvalidation(m *ir.Module, inv *Invalidation, changed bool) {
	if inv.all {
		for _, f := range m.Funcs {
			if !f.External {
				f.MarkMutated()
			}
		}
	}
	for _, f := range inv.funcs {
		f.MarkMutated()
	}
	if inv.facts {
		ps.factsGen++
	}
	if changed || inv.all || len(inv.funcs) > 0 {
		ps.moduleGen++
	}
}

// runModulePass executes (or provably skips) one module-scoped instance.
func (ps *pipeState) runModulePass(m *ir.Module, p Pass, id int, o Options) (bool, PassStats) {
	var st PassStats
	defined := 0
	for _, f := range m.Funcs {
		if !f.External {
			defined++
		}
	}
	if ps.lastRun[id] == ps.moduleGen {
		st.FuncsSkipped = defined
		return false, st
	}
	ps.lastRun[id] = ps.moduleGen
	var inv Invalidation
	changed := p.Run(m, o, &inv)
	ps.applyInvalidation(m, &inv, changed)
	st.Changed = changed
	st.FuncsVisited = defined
	return changed, st
}

// runFuncPass executes one function-scoped instance: the optional Pre hook,
// the dirty-filtered sweep, and the optional Post epilogue.
func (ps *pipeState) runFuncPass(m *ir.Module, p Pass, id int, o Options) (bool, PassStats) {
	var st PassStats
	changed := false
	if p.Pre != nil && ps.lastPre[id] != ps.moduleGen {
		ps.lastPre[id] = ps.moduleGen
		if p.Pre(m, o) {
			ps.factsGen++
		}
	}
	forceAll := ps.lastFacts[id] != ps.factsGen
	ps.lastFacts[id] = ps.factsGen
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		sn := ps.seenOf(f)
		g := f.Gen()
		if !forceAll && sn[id] == g+1 {
			st.FuncsSkipped++
			continue
		}
		st.FuncsVisited++
		sn[id] = g + 1
		if p.Fn(f, o) {
			f.MarkMutated()
			changed = true
		}
		if f.Gen() != g {
			// Covers both the reported change and silent cleanups the pass
			// flagged via MarkMutated without counting them as changes.
			ps.moduleGen++
		}
	}
	if p.Post != nil {
		var inv Invalidation
		if p.Post(m, o, &inv) {
			changed = true
		}
		ps.applyInvalidation(m, &inv, changed)
	}
	st.Changed = changed
	return changed, st
}

// ObservedPipeline is Pipeline with an observer attached to every executed
// pass instance; obs may be nil.
func ObservedPipeline(m *ir.Module, o Options, passes []Pass, maxIters int, obs Observer) error {
	if maxIters < 1 {
		maxIters = 1
	}
	if obs != nil {
		obs.BeginPipeline(m)
		// An observer that is also a remark sink turns pass-side remark
		// emission on for this run; the shared context rides the Options
		// value into every pass invocation.
		if sink, ok := obs.(RemarkSink); ok {
			o.remarks = &remarkCtx{sink: sink}
		}
	}
	ps := newPipeState(passes)
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, p := range passes {
			var start time.Time
			if obs != nil {
				start = time.Now()
			}
			if o.remarks != nil {
				o.remarks.pass, o.remarks.index, o.remarks.iter = p.Name, i, iter
			}
			var passChanged bool
			var st PassStats
			if p.Run != nil {
				passChanged, st = ps.runModulePass(m, p, ps.pid[i], o)
			} else {
				passChanged, st = ps.runFuncPass(m, p, ps.pid[i], o)
			}
			if passChanged {
				changed = true
			}
			if obs != nil {
				st.Duration = time.Since(start)
				obs.AfterPass(m, p.Name, i, iter, st)
			}
			if o.VerifyEachPass {
				if err := ir.Verify(m); err != nil {
					return fmt.Errorf("opt: after pass %s (iteration %d): %w", p.Name, iter, err)
				}
			}
		}
		if !changed {
			break
		}
	}
	if !o.VerifyEachPass {
		if err := ir.Verify(m); err != nil {
			return fmt.Errorf("opt: after pipeline: %w", err)
		}
	}
	return nil
}

// forEachDefined applies f to every function with a body (module-scoped
// passes sweep through this; function-scoped passes let the pass manager
// drive the sweep so it can dirty-filter).
func forEachDefined(m *ir.Module, f func(*ir.Func) bool) bool {
	changed := false
	for _, fn := range m.Funcs {
		if fn.External {
			continue
		}
		if f(fn) {
			changed = true
		}
	}
	return changed
}
