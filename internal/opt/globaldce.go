package opt

import (
	"dcelens/internal/ir"
)

// GlobalDCE removes internal functions that are unreachable in the call
// graph from the module's roots (main and every externally-visible
// function). Marker calls inside removed functions vanish from the
// assembly — this is how function-entry markers of never-called static
// functions get eliminated.
//
// Globals are deliberately NOT removed: the reproduction's observation
// model reads every global after exit (the Csmith-style checksum), so an
// "unused" global is still observable state.
var GlobalDCE = Pass{Name: "globaldce", Run: globalDCE}

// globalDCE only removes whole functions; surviving bodies are untouched,
// so it reports no per-function invalidations.
func globalDCE(m *ir.Module, o Options, inv *Invalidation) bool {
	live := map[*ir.Func]bool{}
	var mark func(f *ir.Func)
	mark = func(f *ir.Func) {
		if live[f] {
			return
		}
		live[f] = true
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Callee != nil {
					mark(in.Callee)
				}
			}
		}
	}
	for _, f := range m.Funcs {
		if f.External || !f.Internal || f.Name == "main" {
			mark(f)
		}
	}
	var keep []*ir.Func
	changed := false
	for _, f := range m.Funcs {
		switch {
		case f.External || live[f]:
			keep = append(keep, f)
		case o.KeepSRAClones && hasPointerParam(f) && f.WasInlined:
			// Emulates GCC's interprocedural-SRA leftovers (paper Listing
			// 9b): when a pointer-parameter function was argument-promoted
			// and inlined everywhere, its specialized copy survives even
			// though nothing references it, so its marker calls stay in
			// the assembly. Never-called helpers are removed normally.
			keep = append(keep, f)
		default:
			changed = true
		}
	}
	if changed {
		m.Funcs = keep
	}
	return changed
}

func hasPointerParam(f *ir.Func) bool {
	for _, t := range f.ParamTys {
		if t.IsPointer() {
			return true
		}
	}
	return false
}
