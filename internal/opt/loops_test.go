package opt

import (
	"testing"

	"dcelens/internal/ir"
)

func TestLICMHoistsInvariantLoad(t *testing.T) {
	m := buildIR(t, `
static int g = 7;
static int sum = 0;
int main(void) {
  for (int i = 0; i < 8; i++) {
    sum += g;
  }
  return sum;
}`)
	runPasses(t, m, fullOpts(), Mem2Reg, LICM)
	// The load of g should now be outside the loop: exactly one load of g.
	loads := 0
	main := m.LookupFunc("main")
	dt := ir.Dominators(main)
	loops := ir.NaturalLoops(main, dt)
	if len(loops) == 0 {
		t.Fatal("loop disappeared?")
	}
	for _, b := range main.Blocks {
		inLoop := loops[0].Blocks[b]
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoad {
				loc := ResolveLoc(in.Args[0])
				if loc.G != nil && loc.G.Name == "g" {
					loads++
					if inLoop {
						t.Errorf("load of g still inside the loop:\n%s", main)
					}
				}
			}
		}
	}
	if got := exec(t, m); got.ExitCode != 56 {
		t.Fatalf("exit %d, want 56", got.ExitCode)
	}
}

func TestLICMRespectsAliasingStores(t *testing.T) {
	m := buildIR(t, `
static int g = 1;
static int sum = 0;
int main(void) {
  for (int i = 0; i < 4; i++) {
    sum += g;
    g = g + 1; // g is written in the loop: its load must stay
  }
  return sum;
}`)
	runPasses(t, m, fullOpts(), Mem2Reg, LICM)
	if got := exec(t, m); got.ExitCode != 1+2+3+4 {
		t.Fatalf("exit %d, want 10", got.ExitCode)
	}
}

func TestUnrollCountedLoop(t *testing.T) {
	m := buildIR(t, `
static int sum = 0;
int main(void) {
  for (int i = 0; i < 5; i++) {
    sum += i;
  }
  return sum;
}`)
	o := fullOpts()
	o.UnrollMaxTrip = 8
	runPasses(t, m, o, Mem2Reg, Unroll, SCCP, InstCombine, SimplifyCFG, DCE)
	if got := exec(t, m); got.ExitCode != 10 {
		t.Fatalf("exit %d, want 10", got.ExitCode)
	}
	// After unrolling and folding there should be no loop left.
	main := m.LookupFunc("main")
	dt := ir.Dominators(main)
	if loops := ir.NaturalLoops(main, dt); len(loops) != 0 {
		t.Errorf("loop survived unrolling:\n%s", main)
	}
}

func TestUnrollEnablesDCE(t *testing.T) {
	// The loop writes c[0] and c[1]; after full unrolling, forwarding
	// proves c[0] non-null — the shape of paper Listing 9e.
	m := buildIR(t, `
void DCEMarker0(void);
static int a[2];
static int b;
static int *c[2];
int main(void) {
  for (int i = 0; i < 2; i++) {
    c[i] = &a[1];
  }
  if (!c[0]) {
    DCEMarker0();
  }
  return 0;
}`)
	o := fullOpts()
	o.UnrollMaxTrip = 8
	runPasses(t, m, o, stdUnrollSchedule()...)
	if markerSurvives(m, "DCEMarker0") {
		t.Errorf("unroll+forwarding failed to prove c[0] != 0:\n%s", m)
	}

	// With widened (vectorized) pointer stores, forwarding is blocked and
	// the marker survives — the GCC -O3 miss.
	m2 := buildIR(t, `
void DCEMarker0(void);
static int a[2];
static int b;
static int *c[2];
int main(void) {
  for (int i = 0; i < 2; i++) {
    c[i] = &a[1];
  }
  if (!c[0]) {
    DCEMarker0();
  }
  return 0;
}`)
	o.WidenPointerLoopStores = true
	runPasses(t, m2, o, append([]Pass{WidenStores}, stdUnrollSchedule()...)...)
	if !markerSurvives(m2, "DCEMarker0") {
		t.Errorf("widened stores should block the fold (paper Listing 9e):\n%s", m2)
	}
}

func stdUnrollSchedule() []Pass {
	return []Pass{Mem2Reg, Unroll, GVN, SCCP, InstCombine, SimplifyCFG, GVN, DCE, SimplifyCFG}
}

func TestVRPFoldsRangeComparisons(t *testing.T) {
	m := buildIR(t, `
void DCEMarker0(void);
static int g;
int main(void) {
  for (int i = 0; i < 10; i++) {
    if (i > 100) {
      DCEMarker0(); // i is in [0, 10]: never
    }
    g += i;
  }
  return 0;
}`)
	o := fullOpts()
	o.ShiftNonzeroRelation = true
	runPasses(t, m, o, Mem2Reg, VRP, SCCP, SimplifyCFG, DCE)
	if markerSurvives(m, "DCEMarker0") {
		t.Errorf("VRP failed to bound the loop counter:\n%s", m)
	}
}

func TestVRPShiftRelationKnob(t *testing.T) {
	src := `
void DCEMarker0(void);
static int g;
int main(void) {
  for (int i = 1; i < 4; i++) {
    int d = i << 1; // in [2, 8]: never zero
    if (d == 0) {
      DCEMarker0();
    }
    g += d;
  }
  return 0;
}`
	m := buildIR(t, src)
	o := fullOpts()
	o.ShiftNonzeroRelation = true
	runPasses(t, m, o, Mem2Reg, VRP, SCCP, SimplifyCFG, DCE)
	if markerSurvives(m, "DCEMarker0") {
		t.Errorf("shift relation enabled but not used:\n%s", m)
	}

	m2 := buildIR(t, src)
	o.ShiftNonzeroRelation = false
	o.UnrollMaxTrip = 0
	runPasses(t, m2, o, Mem2Reg, VRP, SCCP, SimplifyCFG, DCE)
	if !markerSurvives(m2, "DCEMarker0") {
		t.Errorf("marker should survive without the shift relation (paper Listing 9a)")
	}
}

func TestJumpThreading(t *testing.T) {
	// The classic diamond: the value of x is known per-predecessor, so
	// each predecessor can bypass the test.
	m := buildIR(t, `
void DCEMarker0(void);
static int cond;
int main(void) {
  int x;
  if (cond) {
    x = 1;
  } else {
    x = 0;
  }
  if (x == 2) {
    DCEMarker0(); // unreachable on every threaded path
  }
  return 0;
}`)
	runPasses(t, m, fullOpts(), Mem2Reg, JumpThread, SCCP, SimplifyCFG, DCE)
	if markerSurvives(m, "DCEMarker0") {
		t.Errorf("jump threading failed:\n%s", m)
	}
}

func TestUnswitchHoistsInvariantBranch(t *testing.T) {
	m := buildIR(t, `
void DCEMarker0(void);
static int flag;
static int g;
int main(void) {
  int f = flag;
  for (int i = 0; i < 4; i++) {
    if (f) {
      g += i;
    } else {
      g -= i;
    }
  }
  DCEMarker0();
  return g;
}`)
	o := fullOpts()
	runPasses(t, m, o, Mem2Reg, Unswitch, SimplifyCFG)
	// Two loops should now exist (true and false versions).
	main := m.LookupFunc("main")
	dt := ir.Dominators(main)
	loops := ir.NaturalLoops(main, dt)
	if len(loops) != 2 {
		t.Errorf("expected 2 loops after unswitching, got %d:\n%s", len(loops), main)
	}
	if got := exec(t, m); got.ExitCode != -6 {
		t.Errorf("exit %d, want -6", got.ExitCode)
	}
}

// TestUnswitchAggressiveBlocksFolding reproduces the Listing 7/8a shape:
// aggressive unswitching launders the condition through an opaque slot;
// without a later mem2reg round, SCCP cannot fold the preheader branch and
// the dead loop copy (with its marker) survives.
func TestUnswitchAggressiveBlocksFolding(t *testing.T) {
	src := `
void DCEMarker0(void);
static int b = 0;
static int g;
int main(void) {
  int bb = b;
  for (int i = 0; i < 4; i++) {
    if (bb) {
      DCEMarker0(); // dead: b == 0 always
    }
    g += i;
  }
  return 0;
}`
	// The regression only manifests when unswitching runs before the
	// interprocedural constant propagation would have folded the
	// condition — exactly the pass-ordering interaction the paper
	// describes. Clean unswitch + later const prop: marker eliminated.
	m := buildIR(t, src)
	o := fullOpts()
	o.AggressiveUnswitch = false
	runPasses(t, m, o, Mem2Reg, Unswitch, IPSCCP, SCCP, InstCombine, SimplifyCFG, DCE)
	if markerSurvives(m, "DCEMarker0") {
		t.Errorf("clean unswitch: marker should be eliminated:\n%s", m)
	}

	// Aggressive unswitch without a post-unswitch mem2reg: marker missed.
	// A single schedule iteration models the regressed pass manager (a
	// second iteration would re-run mem2reg and heal the laundered slot).
	m2 := buildIR(t, src)
	o.AggressiveUnswitch = true
	if err := Pipeline(m2, o, []Pass{Mem2Reg, Unswitch, IPSCCP, SCCP, InstCombine, SimplifyCFG, DCE}, 1); err != nil {
		t.Fatal(err)
	}
	if !markerSurvives(m2, "DCEMarker0") {
		t.Errorf("aggressive unswitch should block folding (paper Listings 7/8a):\n%s", m2)
	}

	// The fixed schedule moves unswitching after the folding passes: the
	// condition is already constant, the unswitcher skips it (constant
	// branches are SimplifyCFG's job), and no freeze is ever inserted.
	m3 := buildIR(t, src)
	if err := Pipeline(m3, o, []Pass{Mem2Reg, IPSCCP, SCCP, InstCombine, SimplifyCFG, Unswitch, SCCP, SimplifyCFG, DCE}, 1); err != nil {
		t.Fatal(err)
	}
	if markerSurvives(m3, "DCEMarker0") {
		t.Errorf("unswitch-after-folding should leave nothing to unswitch:\n%s", m3)
	}
}

// TestLoopPassesPreserveSemantics: the full pipeline with loop passes must
// preserve observable behaviour on random programs.
func TestLoopPassesPreserveSemantics(t *testing.T) {
	o := fullOpts()
	o.UnrollMaxTrip = 8
	passes := []Pass{
		Mem2Reg, IPSCCP, SCCP, InstCombine, SimplifyCFG, Inline,
		LICM, Unroll, Unswitch, JumpThread, VRP,
		GVN, DSE, DCE, SimplifyCFG, GlobalDCE,
	}
	checkSemanticsPreserved(t, o, passes, 30)
}

func TestLoopPassesAggressiveKnobsPreserveSemantics(t *testing.T) {
	o := fullOpts()
	o.UnrollMaxTrip = 6
	o.AggressiveUnswitch = true
	o.WidenPointerLoopStores = true
	passes := []Pass{
		Mem2Reg, IPSCCP, WidenStores, Unswitch, SCCP, InstCombine,
		SimplifyCFG, Inline, LICM, Unroll, JumpThread, VRP,
		GVN, DSE, DCE, SimplifyCFG, GlobalDCE,
	}
	checkSemanticsPreserved(t, o, passes, 25)
}
