package opt

import (
	"dcelens/internal/ir"
	"dcelens/internal/sema"
)

// JumpThread forwards predecessors across blocks whose branch outcome is
// already decided on that incoming edge: the classic case is a block
// containing only a phi (and optionally a comparison of that phi against a
// constant) followed by a conditional branch. Each predecessor contributing
// a constant is redirected straight to the branch target it implies.
//
// The paper's Listing 9d bisects a GCC missed optimization to jump
// threaders "threading through dead code" and leaving IR that confused VRP;
// in this reproduction that corresponds to scheduling this pass after the
// final cleanup round (see internal/pipeline).
var JumpThread = Pass{Name: "jumpthread", Fn: jumpThreadFunc}

func jumpThreadFunc(f *ir.Func, o Options) bool {
	changed := false
	for {
		if !jumpThreadOnce(f) {
			break
		}
		changed = true
	}
	return changed
}

func jumpThreadOnce(f *ir.Func) bool {
	var dt *ir.DomTree // computed lazily; valid until the first rewrite
	for _, b := range f.Blocks {
		if b == f.Entry() || len(b.Preds) < 2 {
			continue
		}
		phi, cmp, term, ok := threadableShape(b)
		if !ok {
			continue
		}
		// Find a predecessor whose incoming value decides the branch.
		for i, p := range b.Preds {
			v, isC := isConst(phi.Args[phiIndexFor(phi, p, i)])
			if !isC {
				continue
			}
			cond := v
			if cmp != nil {
				cc, okc := isConst(cmp.Args[1])
				if !okc {
					continue
				}
				// Evaluate in the phi's type: signedness matters.
				r, okE := sema.EvalBinop(cmp.BinOp, v, cc, phi.Typ, cmp.Typ)
				if !okE {
					continue
				}
				cond = r
			}
			target := term.Targets[1]
			if cond != 0 {
				target = term.Targets[0]
			}
			// The target must tolerate the new edge: each phi's value for
			// pred b must dominate the new pred p (being defined outside b
			// is necessary but not sufficient).
			if dt == nil {
				dt = ir.Dominators(f)
			}
			if !phisSafeToRetarget(b, target, p, dt) {
				continue
			}
			// Retarget p: p -> target instead of p -> b. Target phis gain
			// p with the value they had for b (defined outside b, checked).
			for _, in := range target.Instrs {
				if in.Op != ir.OpPhi {
					break
				}
				for j, pb := range in.PhiPreds {
					if pb == b {
						in.Args = append(in.Args, in.Args[j])
						in.PhiPreds = append(in.PhiPreds, p)
						break
					}
				}
			}
			ir.RedirectEdge(p, b, target)
			return true
		}
	}
	return false
}

// threadableShape matches blocks of the form:
//
//	phi; [consts...;] condbr phi, T, F
//	phi; [consts...;] cmp = bin(phi, const); condbr cmp, T, F
//
// with no other instructions (so duplicating the block per edge is
// unnecessary — retargeting suffices). Constants may be materialized in the
// block; they are position-independent.
func threadableShape(b *ir.Block) (phi, cmp, term *ir.Instr, ok bool) {
	n := len(b.Instrs)
	if n < 2 {
		return nil, nil, nil, false
	}
	term = b.Instrs[n-1]
	if term.Op != ir.OpCondBr {
		return nil, nil, nil, false
	}
	phi = b.Instrs[0]
	if phi.Op != ir.OpPhi {
		return nil, nil, nil, false
	}
	for _, in := range b.Instrs[1 : n-1] {
		switch {
		case in.Op == ir.OpConst:
			// Position-independent, but a use outside b would lose
			// dominance once edges bypass b.
			if usedOutside(in, b) {
				return nil, nil, nil, false
			}
		case in.Op == ir.OpBin && isComparison(in.BinOp) && cmp == nil:
			cmp = in
		default:
			return nil, nil, nil, false
		}
	}
	if cmp == nil {
		if term.Args[0] != phi {
			return nil, nil, nil, false
		}
		if usedOutside(phi, b) {
			return nil, nil, nil, false
		}
		return phi, nil, term, true
	}
	if cmp.Args[0] != phi || term.Args[0] != cmp {
		return nil, nil, nil, false
	}
	if _, isC := isConst(cmp.Args[1]); !isC {
		return nil, nil, nil, false
	}
	// The phi and cmp must not be used outside this block (we do not
	// duplicate them along the threaded edge).
	if usedOutside(phi, b) || usedOutside(cmp, b) {
		return nil, nil, nil, false
	}
	return phi, cmp, term, true
}

func usedOutside(v *ir.Instr, b *ir.Block) bool {
	f := b.Func
	for _, b2 := range f.Blocks {
		if b2 == b {
			continue
		}
		for _, in := range b2.Instrs {
			for _, a := range in.Args {
				if a == v {
					return true
				}
			}
		}
	}
	return false
}

// phiIndexFor locates the phi entry for pred p; hint is the index of p in
// b.Preds, which usually matches.
func phiIndexFor(phi *ir.Instr, p *ir.Block, hint int) int {
	if hint < len(phi.PhiPreds) && phi.PhiPreds[hint] == p {
		return hint
	}
	for i, pb := range phi.PhiPreds {
		if pb == p {
			return i
		}
	}
	return 0
}

// phisSafeToRetarget checks that every phi in target has its incoming value
// for pred b defined in a block dominating the new pred p, so the value
// remains well-defined on the threaded edge p -> target.
func phisSafeToRetarget(b, target, p *ir.Block, dt *ir.DomTree) bool {
	for _, in := range target.Instrs {
		if in.Op != ir.OpPhi {
			break
		}
		found := false
		for j, pb := range in.PhiPreds {
			if pb == b {
				def := in.Args[j].Block
				if def == b || !dt.Dominates(def, p) {
					return false
				}
				found = true
			}
		}
		if !found {
			return false // inconsistent phi; be safe
		}
	}
	return true
}
