package opt

import (
	"fmt"

	"dcelens/internal/ir"
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// GVN is dominator-scoped global value numbering plus block-local
// store-to-load forwarding and load CSE.
//
// Forwarding consults the alias analysis and the escape analysis: a call to
// an external (marker) function only clobbers escaping globals, so values
// of static, non-escaping globals forward straight across marker calls —
// the enabling property of the paper's instrumentation. Stores marked
// Widened by the store-widening pass never forward, reproducing the
// type-mismatch blockage of paper Listing 9e.
var GVN = Pass{Name: "gvn", Pre: ComputeEscapesOpt, Fn: gvnFunc, Post: gvnForward}

// gvnForward is GVN's module-scoped epilogue: cross-function single-store
// forwarding after the per-function sweep. Functions it strips loads from
// are reported through inv so dirty tracking stays exact.
func gvnForward(m *ir.Module, o Options, inv *Invalidation) bool {
	if !o.LoadForwarding {
		return false
	}
	return singleStoreForward(m, o, inv)
}

// singleStoreForward is the cross-block forwarding rule: for a non-exposed
// internal scalar global with exactly one store in the whole module,
// nothing else can ever write it (no pointer to it exists and no other
// store does), so any load dominated by the store reads the stored value —
// regardless of loops or intervening calls. This models the part of
// GVN/FRE both real compilers get right that the block-local pass above
// would miss.
func singleStoreForward(m *ir.Module, o Options, inv *Invalidation) bool {
	changed := false
	ai := buildAccessIndex(m)
	for _, g := range m.Globals {
		if g.Escapes || g.AddrExposed || g.Len != 1 {
			continue
		}
		loads, stores, ok := ai.accesses(g, false)
		if !ok || len(stores) != 1 || len(loads) == 0 {
			continue
		}
		s := stores[0]
		if s.Widened {
			if o.RemarksOn() {
				o.missed(s.Block.Func, "store "+g.Name, ReasonWidenedStore,
					"the type-erased widened store never forwards")
			}
			continue // the "vectorized" type-erased store never forwards
		}
		v := s.Args[1]
		f := s.Block.Func
		// Loop hazard: if the store sits in a cycle, a partial iteration
		// could recompute v without re-running the store, making the SSA
		// value at a later load newer than memory. Safe cases: v is an
		// execution-invariant producer, v is computed in the store's own
		// block (a basic block runs atomically, so recomputing v implies
		// re-storing), or the store is not in any cycle.
		valueStable := v.Op == ir.OpConst || v.Op == ir.OpNull || v.Op == ir.OpGlobalAddr ||
			v.Block == s.Block || !blockInCycle(f, s.Block)
		if !valueStable {
			if o.RemarksOn() {
				o.missed(f, "store "+g.Name, ReasonLoopCarried,
					"the store sits in a cycle and the stored value may be recomputed without re-storing")
			}
			continue
		}
		dt := ir.Dominators(f)
		pos := map[*ir.Instr]int{}
		for i, in := range s.Block.Instrs {
			pos[in] = i
		}
		forwarded := false
		for _, l := range loads {
			if l.Block.Func != f {
				continue
			}
			if l.Block == s.Block {
				if pos[l] < pos[s] {
					continue // load precedes the store in its own block
				}
			} else if !dt.Dominates(s.Block, l.Block) {
				if o.RemarksOn() {
					o.missed(l.Block.Func, "load "+g.Name, ReasonNotDominated,
						"the single store does not dominate this load")
				}
				continue
			}
			if !types.Identical(l.Typ, v.Typ) {
				if o.RemarksOn() {
					o.missed(l.Block.Func, "load "+g.Name, ReasonTypeMismatch,
						"loaded and stored types differ")
				}
				continue
			}
			ir.ReplaceAllUses(l, v)
			l.Remove()
			inv.Func(l.Block.Func)
			changed = true
			forwarded = true
			if o.RemarksOn() {
				o.applied(l.Block.Func, "load "+g.Name, "forwarded the module's single store across blocks")
			}
		}
		if forwarded && (v.Op == ir.OpGlobalAddr || v.Op == ir.OpGEP) {
			// Uses of the deleted loads now reference an address value
			// directly — new accesses of that address's global. Reindex so
			// later globals see them.
			ai.rebuild(m)
		}
	}
	return changed
}

func gvnFunc(f *ir.Func, o Options) bool {
	dt := ir.Dominators(f)
	ac := NewAliasCtx(f, o.Alias)
	g := &gvnState{
		o:       o,
		ac:      ac,
		table:   map[gvnKey]*ir.Instr{},
		typeIDs: map[*types.Type]int{},
		typeStr: map[string]int{},
	}
	changed := g.walk(f.Entry(), dt)
	// One sweep repairs every remaining stale operand (phis visited before
	// the value they reference was replaced).
	g.reloc.Apply(f)
	return changed
}

type gvnState struct {
	o     Options
	ac    *AliasCtx
	table map[gvnKey]*ir.Instr
	reloc ir.Relocator
	// Type interning: structurally identical types can be distinct
	// pointers, so key equality goes through a string-deduplicated id —
	// computed once per distinct pointer, not once per instruction.
	typeIDs map[*types.Type]int
	typeStr map[string]int
}

// gvnKey is the structural identity of a pure instruction — a comparable
// struct, so table lookups cost a hash of a few words instead of the
// fmt-formatted string key this pass started with (which was ~4% of total
// campaign CPU). n disambiguates arity within the fixed arg array.
type gvnKey struct {
	op         ir.Op
	typ        int
	bin        token.Kind
	aux        int64
	g          *ir.Global
	a0, a1, a2 int
	n          int8
}

func (g *gvnState) typeID(t *types.Type) int {
	if id, ok := g.typeIDs[t]; ok {
		return id
	}
	s := t.String()
	id, ok := g.typeStr[s]
	if !ok {
		id = len(g.typeStr) + 1
		g.typeStr[s] = id
	}
	g.typeIDs[t] = id
	return id
}

// walk performs a preorder dominator-tree traversal with a scoped table.
func (g *gvnState) walk(b *ir.Block, dt *ir.DomTree) bool {
	changed := false
	var added []gvnKey

	// Block-local memory state for forwarding.
	type memEntry struct {
		loc Loc
		val *ir.Instr
	}
	var avail []memEntry
	// invalidate reports how many forwarding candidates it killed, so the
	// call-clobber remark can say what was lost.
	invalidate := func(pred func(Loc) bool) int {
		kept := avail[:0]
		for _, e := range avail {
			if !pred(e.loc) {
				kept = append(kept, e)
			}
		}
		n := len(avail) - len(kept)
		avail = kept
		return n
	}

	var keep []*ir.Instr
	for _, in := range b.Instrs {
		// Canonicalize operands through pending replacements first: value
		// numbering and location resolution must see the representative,
		// exactly as an eager rewriter would.
		if !g.reloc.Empty() {
			for i, a := range in.Args {
				if n := g.reloc.Resolve(a); n != a {
					in.Args[i] = n
				}
			}
		}
		switch in.Op {
		case ir.OpLoad:
			loc := ResolveLoc(in.Args[0])
			forwarded := false
			for _, e := range avail {
				if MustAlias(e.loc, loc) && e.val.Typ != nil && types.Identical(e.val.Typ, in.Typ) {
					g.reloc.Add(in, e.val)
					forwarded = true
					changed = true
					break
				}
			}
			if forwarded {
				if g.o.RemarksOn() {
					g.o.applied(b.Func, loadSubject(in), "forwarded from an available store or load")
				}
				continue // drop the load
			}
			avail = append(avail, memEntry{loc, in})

		case ir.OpStore:
			loc := ResolveLoc(in.Args[0])
			invalidate(func(l Loc) bool { return g.ac.MayAlias(l, loc) })
			if !in.Widened && g.o.LoadForwarding {
				avail = append(avail, memEntry{loc, in.Args[1]})
			}

		case ir.OpCall:
			if in.Callee != nil && in.Callee.External {
				// Opaque externals can only touch escaping/exposed storage.
				killed := invalidate(func(l Loc) bool {
					switch {
					case l.G != nil:
						return l.G.Escapes
					case l.A != nil:
						return g.ac.isExposed(l.A)
					default:
						return true
					}
				})
				if killed > 0 && g.o.RemarksOn() {
					g.o.missed(b.Func, "call "+in.Callee.Name, ReasonCallClobber,
						fmt.Sprintf("external call may write escaping storage: %d forwarding candidates dropped", killed))
				}
			} else {
				killed := len(avail)
				avail = avail[:0] // internal call: no mod/ref summary
				if killed > 0 && g.o.RemarksOn() {
					subject := "call"
					if in.Callee != nil {
						subject = "call " + in.Callee.Name
					}
					g.o.missed(b.Func, subject, ReasonCallClobber,
						fmt.Sprintf("internal call has no mod/ref summary: %d forwarding candidates dropped", killed))
				}
			}

		default:
			if in.Typ != nil && in.IsPure() && in.Op != ir.OpPhi && in.Op != ir.OpAlloca && in.Op != ir.OpParam {
				key, exact := g.key(in)
				if !exact {
					break
				}
				if rep, ok := g.table[key]; ok {
					g.reloc.Add(in, rep)
					changed = true
					if g.o.RemarksOn() {
						g.o.applied(b.Func, fmt.Sprintf("cse v%d (%s)", in.ID, in.Op),
							"replaced by a dominating equivalent value")
					}
					continue // drop the duplicate
				}
				g.table[key] = in
				added = append(added, key)
			}
		}
		keep = append(keep, in)
	}
	b.Instrs = keep

	for _, kid := range dt.Children(b) {
		if g.walk(kid, dt) {
			changed = true
		}
	}
	for _, k := range added {
		delete(g.table, k)
	}
	return changed
}

// key builds the structural identity of a pure instruction; ok is false for
// shapes the fixed-arity key cannot represent exactly (which simply opt out
// of CSE — never a wrong merge).
func (g *gvnState) key(in *ir.Instr) (gvnKey, bool) {
	k := gvnKey{op: in.Op, typ: g.typeID(in.Typ)}
	switch in.Op {
	case ir.OpConst:
		k.aux = in.IntVal
		return k, true
	case ir.OpNull:
		return k, true
	case ir.OpGlobalAddr:
		// Globals are unique per name, so pointer identity is name identity.
		k.g = in.Global
		return k, true
	case ir.OpBin:
		k.bin = in.BinOp
		a, b := in.Args[0].ID, in.Args[1].ID
		if isCommutative(in.BinOp) && b < a {
			a, b = b, a
		}
		k.a0, k.a1, k.n = a, b, 2
		return k, true
	default:
		if len(in.Args) > 3 {
			return k, false
		}
		k.n = int8(len(in.Args))
		if k.n > 0 {
			k.a0 = in.Args[0].ID
		}
		if k.n > 1 {
			k.a1 = in.Args[1].ID
		}
		if k.n > 2 {
			k.a2 = in.Args[2].ID
		}
		return k, true
	}
}
