package opt

import (
	"fmt"
	"sort"
	"strings"

	"dcelens/internal/ir"
	"dcelens/internal/types"
)

// GVN is dominator-scoped global value numbering plus block-local
// store-to-load forwarding and load CSE.
//
// Forwarding consults the alias analysis and the escape analysis: a call to
// an external (marker) function only clobbers escaping globals, so values
// of static, non-escaping globals forward straight across marker calls —
// the enabling property of the paper's instrumentation. Stores marked
// Widened by the store-widening pass never forward, reproducing the
// type-mismatch blockage of paper Listing 9e.
var GVN = Pass{Name: "gvn", Run: gvn}

func gvn(m *ir.Module, o Options) bool {
	ComputeEscapesOpt(m, o)
	changed := forEachDefined(m, func(f *ir.Func) bool {
		return gvnFunc(f, o)
	})
	if o.LoadForwarding && singleStoreForward(m) {
		changed = true
	}
	return changed
}

// singleStoreForward is the cross-block forwarding rule: for a non-exposed
// internal scalar global with exactly one store in the whole module,
// nothing else can ever write it (no pointer to it exists and no other
// store does), so any load dominated by the store reads the stored value —
// regardless of loops or intervening calls. This models the part of
// GVN/FRE both real compilers get right that the block-local pass above
// would miss.
func singleStoreForward(m *ir.Module) bool {
	changed := false
	for _, g := range m.Globals {
		if g.Escapes || g.AddrExposed || g.Len != 1 {
			continue
		}
		loads, stores, ok := globalAccesses(m, g, false)
		if !ok || len(stores) != 1 || len(loads) == 0 {
			continue
		}
		s := stores[0]
		if s.Widened {
			continue // the "vectorized" type-erased store never forwards
		}
		v := s.Args[1]
		f := s.Block.Func
		// Loop hazard: if the store sits in a cycle, a partial iteration
		// could recompute v without re-running the store, making the SSA
		// value at a later load newer than memory. Safe cases: v is an
		// execution-invariant producer, v is computed in the store's own
		// block (a basic block runs atomically, so recomputing v implies
		// re-storing), or the store is not in any cycle.
		valueStable := v.Op == ir.OpConst || v.Op == ir.OpNull || v.Op == ir.OpGlobalAddr ||
			v.Block == s.Block || !blockInCycle(f, s.Block)
		if !valueStable {
			continue
		}
		dt := ir.Dominators(f)
		pos := map[*ir.Instr]int{}
		for i, in := range s.Block.Instrs {
			pos[in] = i
		}
		for _, l := range loads {
			if l.Block.Func != f {
				continue
			}
			if l.Block == s.Block {
				if pos[l] < pos[s] {
					continue // load precedes the store in its own block
				}
			} else if !dt.Dominates(s.Block, l.Block) {
				continue
			}
			if !types.Identical(l.Typ, v.Typ) {
				continue
			}
			ir.ReplaceAllUses(l, v)
			l.Remove()
			changed = true
		}
	}
	return changed
}

func gvnFunc(f *ir.Func, o Options) bool {
	dt := ir.Dominators(f)
	ac := NewAliasCtx(f, o.Alias)
	g := &gvnState{
		o:     o,
		ac:    ac,
		table: map[string]*ir.Instr{},
	}
	return g.walk(f.Entry(), dt)
}

type gvnState struct {
	o     Options
	ac    *AliasCtx
	table map[string]*ir.Instr
}

// walk performs a preorder dominator-tree traversal with a scoped table.
func (g *gvnState) walk(b *ir.Block, dt *ir.DomTree) bool {
	changed := false
	var added []string

	// Block-local memory state for forwarding.
	type memEntry struct {
		loc Loc
		val *ir.Instr
	}
	var avail []memEntry
	invalidate := func(pred func(Loc) bool) {
		kept := avail[:0]
		for _, e := range avail {
			if !pred(e.loc) {
				kept = append(kept, e)
			}
		}
		avail = kept
	}

	var keep []*ir.Instr
	for _, in := range b.Instrs {
		switch in.Op {
		case ir.OpLoad:
			loc := ResolveLoc(in.Args[0])
			forwarded := false
			for _, e := range avail {
				if MustAlias(e.loc, loc) && e.val.Typ != nil && types.Identical(e.val.Typ, in.Typ) {
					ir.ReplaceAllUses(in, e.val)
					forwarded = true
					changed = true
					break
				}
			}
			if forwarded {
				continue // drop the load
			}
			avail = append(avail, memEntry{loc, in})

		case ir.OpStore:
			loc := ResolveLoc(in.Args[0])
			invalidate(func(l Loc) bool { return g.ac.MayAlias(l, loc) })
			if !in.Widened && g.o.LoadForwarding {
				avail = append(avail, memEntry{loc, in.Args[1]})
			}

		case ir.OpCall:
			if in.Callee != nil && in.Callee.External {
				// Opaque externals can only touch escaping/exposed storage.
				invalidate(func(l Loc) bool {
					switch {
					case l.G != nil:
						return l.G.Escapes
					case l.A != nil:
						return g.ac.exposed[l.A]
					default:
						return true
					}
				})
			} else {
				avail = avail[:0] // internal call: no mod/ref summary
			}

		default:
			if in.Typ != nil && in.IsPure() && in.Op != ir.OpPhi && in.Op != ir.OpAlloca && in.Op != ir.OpParam {
				key := g.key(in)
				if rep, ok := g.table[key]; ok {
					ir.ReplaceAllUses(in, rep)
					changed = true
					continue // drop the duplicate
				}
				g.table[key] = in
				added = append(added, key)
			}
		}
		keep = append(keep, in)
	}
	b.Instrs = keep

	for _, kid := range dt.Children(b) {
		if g.walk(kid, dt) {
			changed = true
		}
	}
	for _, k := range added {
		delete(g.table, k)
	}
	return changed
}

// key builds a structural hash key for a pure instruction.
func (g *gvnState) key(in *ir.Instr) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|%s|", int(in.Op), in.Typ)
	switch in.Op {
	case ir.OpConst:
		fmt.Fprintf(&sb, "c%d", in.IntVal)
		return sb.String()
	case ir.OpNull:
		return sb.String()
	case ir.OpGlobalAddr:
		fmt.Fprintf(&sb, "g%s", in.Global.Name)
		return sb.String()
	case ir.OpBin:
		ids := []int{in.Args[0].ID, in.Args[1].ID}
		if isCommutative(in.BinOp) {
			sort.Ints(ids)
		}
		fmt.Fprintf(&sb, "b%v|%d,%d", in.BinOp, ids[0], ids[1])
		return sb.String()
	default:
		for _, a := range in.Args {
			fmt.Fprintf(&sb, "%d,", a.ID)
		}
		return sb.String()
	}
}
