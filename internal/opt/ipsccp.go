package opt

import (
	"fmt"

	"dcelens/internal/ir"
	"dcelens/internal/types"
)

// IPSCCP is the interprocedural global value analysis — the pass whose
// precision differences drive the paper's flagship examples:
//
//   - GlobalPropNoStores is GCC's flow-insensitive analysis: a static
//     global is a constant only if nothing in the module ever stores to it
//     (Listing 4a: GCC cannot see that `a` is 0 at `if (a)` because a
//     store `a = 0` exists *somewhere*).
//   - GlobalPropSameConst is LLVM >= 3.8: stores that write the same
//     constant as the initializer keep the global constant.
//   - GlobalPropFlowAware restores LLVM <= 3.7 behaviour: a load that no
//     store can reach on any control-flow path observes the initializer
//     (losing this was the regression in Listing 6a: `a = 1` at the end of
//     main stopped `if (a)` at the top from folding).
//
// With RedundantStoreElim, stores that provably write the value the global
// already holds are deleted; without it they survive to the assembly — the
// `movl $0, a(%rip)` dead store GCC keeps in Listing 4b.
//
// ConstArrayLoadFold additionally folds loads (with arbitrary indices) from
// never-written arrays whose elements are all the same constant (Listing
// 9f: `b[a]` where b = {0, 0}).
var IPSCCP = Pass{Name: "ipsccp", Run: ipsccp}

func ipsccp(m *ir.Module, o Options, inv *Invalidation) bool {
	if o.GlobalProp == GlobalPropNone {
		return false
	}
	if ComputeEscapesOpt(m, o) {
		inv.Facts()
	}
	ai := buildAccessIndex(m)
	changed := false
	for _, g := range m.Globals {
		if g.Escapes || g.AddrExposed {
			// Other code can touch it: no module-wide view. Internal
			// globals are the interesting misses — external ones were
			// never candidates.
			if o.RemarksOn() && g.Internal {
				o.missedModule("global "+g.Name, ReasonEscape,
					"escaping or address-exposed: no module-wide view of its value")
			}
			continue
		}
		if g.Len == 1 {
			if propagateScalar(m, g, o, ai, inv) {
				changed = true
			}
		} else if o.ConstArrayLoadFold {
			if propagateConstArray(m, g, ai, inv) {
				changed = true
				if o.RemarksOn() {
					o.appliedModule("global "+g.Name, "folded loads from the constant array")
				}
			}
		}
	}
	return changed
}

// accessIndex answers "all loads and stores of global g" for every global at
// once from a single module sweep. Its predecessor rescanned the enclosing
// function once per OpGlobalAddr instance per queried global — quadratic on
// real units and ~9% of campaign CPU. Consumers must rebuild the index after
// a transformation that materializes new address instructions (folding a
// pointer global rewrites loads into fresh OpGlobalAddr/OpGEP values, i.e.
// brand-new accesses of the *target* global); all other propagations only
// delete accesses of the already-queried global and replace values with
// non-address constants, which cannot grow any other global's access set.
type accessIndex struct {
	info map[*ir.Global]*globalAccessInfo
}

type globalAccessInfo struct {
	loads, stores       []*ir.Instr // through the raw address
	gepLoads, gepStores []*ir.Instr // through GEP chains rooted at the address
	hasGEP              bool        // some GEP consumes the raw address
	badDirect           bool        // disallowed use of the raw address
	badGEP              bool        // disallowed use within a GEP chain
}

func buildAccessIndex(m *ir.Module) *accessIndex {
	ai := &accessIndex{info: make(map[*ir.Global]*globalAccessInfo, len(m.Globals))}
	get := func(g *ir.Global) *globalAccessInfo {
		gi := ai.info[g]
		if gi == nil {
			gi = &globalAccessInfo{}
			ai.info[g] = gi
		}
		return gi
	}
	for _, f := range m.Funcs {
		n := f.NumValues()
		base := make([]*ir.Global, n) // chain base: the global this value addresses
		chain := make([]bool, n)      // value is a GEP link, not the raw address
		state := make([]uint8, n)     // GEP memo: 0 unresolved, 1 visiting, 2 done
		var resolve func(in *ir.Instr) *ir.Global
		resolve = func(in *ir.Instr) *ir.Global {
			switch in.Op {
			case ir.OpGlobalAddr:
				return in.Global
			case ir.OpGEP:
				switch state[in.ID] {
				case 0:
					state[in.ID] = 1
					base[in.ID] = resolve(in.Args[0])
					state[in.ID] = 2
				case 1:
					return nil // defensive: SSA defs cannot cycle
				}
				return base[in.ID]
			}
			return nil
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpGlobalAddr:
					base[in.ID] = in.Global
				case ir.OpGEP:
					resolve(in)
					chain[in.ID] = true
				}
			}
		}
		for _, b := range f.Blocks {
			for _, u := range b.Instrs {
				for i, a := range u.Args {
					g := base[a.ID]
					if g == nil {
						continue
					}
					gi := get(g)
					if !chain[a.ID] {
						switch {
						case u.Op == ir.OpLoad:
							gi.loads = append(gi.loads, u)
						case u.Op == ir.OpStore && i == 0:
							gi.stores = append(gi.stores, u)
						case u.Op == ir.OpBin:
							// comparison: fine, no access
						case u.Op == ir.OpGEP && i == 0:
							gi.hasGEP = true // the GEP link reports its own uses
						default:
							gi.badDirect = true
							gi.badGEP = true
						}
					} else {
						switch {
						case u.Op == ir.OpLoad:
							gi.gepLoads = append(gi.gepLoads, u)
						case u.Op == ir.OpStore && i == 0:
							gi.gepStores = append(gi.gepStores, u)
						case u.Op == ir.OpBin:
							// comparisons are fine
						case u.Op == ir.OpGEP && i == 0:
							// chain continues; the successor link reports its own uses
						default:
							gi.badGEP = true
						}
					}
				}
			}
		}
	}
	return ai
}

func (ai *accessIndex) rebuild(m *ir.Module) { *ai = *buildAccessIndex(m) }

// accesses collects all direct loads and stores of g. ok is false if g's
// address is used in any other way (e.g. behind non-constant GEPs for
// scalars — cannot happen for in-bounds MiniC scalars, but be safe). With
// allowGEP, accesses through well-formed GEP chains count as loads/stores
// instead of disqualifying the global.
func (ai *accessIndex) accesses(g *ir.Global, allowGEP bool) (loads, stores []*ir.Instr, ok bool) {
	gi := ai.info[g]
	if gi == nil {
		return nil, nil, true // address never materialized: no accesses
	}
	if gi.badDirect {
		return nil, nil, false
	}
	if !allowGEP {
		if gi.hasGEP {
			return nil, nil, false
		}
		return gi.loads, gi.stores, true
	}
	if gi.badGEP {
		return nil, nil, false
	}
	if len(gi.gepLoads) == 0 && len(gi.gepStores) == 0 {
		return gi.loads, gi.stores, true
	}
	loads = append(append([]*ir.Instr{}, gi.loads...), gi.gepLoads...)
	stores = append(append([]*ir.Instr{}, gi.stores...), gi.gepStores...)
	return loads, stores, true
}

func initConst(g *ir.Global, idx int) (int64, bool) {
	if g.Elem.Kind == types.Pointer {
		return 0, false // pointer globals: address constants, not handled here
	}
	if idx < len(g.Init) {
		if g.Init[idx].IsAddr {
			return 0, false
		}
		return g.Init[idx].Int, true
	}
	return 0, true // zero-initialized tail
}

func propagateScalar(m *ir.Module, g *ir.Global, o Options, ai *accessIndex, inv *Invalidation) bool {
	if g.Elem.Kind == types.Pointer {
		// Address-constant propagation for pointer globals requires the
		// stronger analysis tiers: GCC's flow-insensitive global value
		// analysis does not track pointer-valued initializers, which is a
		// large share of what it misses against LLVM on pointer-heavy
		// Csmith code (paper §4.2: LLVM eliminates an order of magnitude
		// more of GCC's misses than vice versa).
		if o.GlobalProp < GlobalPropSameConst {
			if o.RemarksOn() {
				o.missedModule("global "+g.Name, ReasonPrecision,
					"pointer-valued initializers need the flow-sensitive analysis tier (GlobalPropSameConst)")
			}
			return false
		}
		if propagatePointerGlobal(m, g, ai, inv) {
			if o.RemarksOn() {
				o.appliedModule("global "+g.Name, "folded loads of the never-stored pointer global to its address constant")
			}
			// The folded loads became fresh OpGlobalAddr/OpGEP values whose
			// uses are new accesses of the target global — reindex so a
			// later-iterated global sees them, exactly as the per-global
			// rescan used to.
			ai.rebuild(m)
			return true
		}
		return false
	}
	loads, stores, ok := ai.accesses(g, false)
	if !ok || (len(loads) == 0 && len(stores) == 0) {
		return false
	}
	init, ok := initConst(g, 0)
	if !ok {
		return false
	}

	// Which loads observe the initializer?
	var foldable []*ir.Instr
	deleteStores := false
	switch {
	case len(stores) == 0:
		// Flow-insensitive: no stores at all (GlobalPropNoStores and up).
		foldable = loads
	case o.GlobalProp >= GlobalPropSameConst && allStoresWrite(stores, init):
		// Every store rewrites the initial value: the global is invariant.
		foldable = loads
		deleteStores = o.RedundantStoreElim
	case o.GlobalProp >= GlobalPropFlowAware:
		// Loads that no store reaches observe the initializer.
		mainFn := m.LookupFunc("main")
		if mainIsCalled(m) {
			mainFn = nil // someone calls main: it may run more than once
		}
		for _, l := range loads {
			reachable := false
			for _, s := range stores {
				if storeReachesLoad(s, l, mainFn) {
					reachable = true
					break
				}
			}
			if !reachable {
				foldable = append(foldable, l)
			}
		}
	}
	if len(foldable) == 0 && !deleteStores {
		if o.RemarksOn() && len(stores) > 0 && len(loads) > 0 {
			o.missedModule("global "+g.Name, ReasonPrecision,
				fmt.Sprintf("%d stores block constant folding at analysis tier %d", len(stores), o.GlobalProp))
		}
		return false
	}
	for _, l := range foldable {
		c := l.Block.NewInstr(ir.OpConst, l.Typ)
		c.IntVal = l.Typ.WrapValue(init)
		l.Block.InsertBefore(c, l)
		ir.ReplaceAllUses(l, c)
		l.Remove()
		inv.Func(l.Block.Func)
	}
	if deleteStores {
		for _, s := range stores {
			s.Remove()
			inv.Func(s.Block.Func)
		}
		if o.RemarksOn() {
			o.appliedModule("global "+g.Name,
				fmt.Sprintf("deleted %d redundant stores of the invariant value", len(stores)))
		}
	}
	if o.RemarksOn() && len(foldable) > 0 {
		o.appliedModule("global "+g.Name, fmt.Sprintf("folded %d loads to the constant value", len(foldable)))
	}
	return len(foldable) > 0 || deleteStores
}

func allStoresWrite(stores []*ir.Instr, v int64) bool {
	for _, s := range stores {
		c, ok := isConst(s.Args[1])
		if !ok || c != v {
			return false
		}
	}
	return true
}

// storeReachesLoad reports whether any control path can execute s and then
// l. CFG reachability within a single activation is only meaningful for a
// function that runs at most once — main. For every other function (or for
// accesses split across functions) a store in one call can precede a load
// in a later call, so the answer is conservatively "reachable". Within
// main, plain CFG reachability is used (s's block reaches l's block, or
// they share a block with s first — a block inside a loop reaches itself).
func storeReachesLoad(s, l *ir.Instr, mainFn *ir.Func) bool {
	if s.Block.Func != l.Block.Func || s.Block.Func != mainFn || mainFn == nil {
		return true
	}
	f := s.Block.Func
	if s.Block == l.Block {
		// Same block: reachable if s comes first, or the block is in a
		// cycle (the path wraps around).
		for _, in := range s.Block.Instrs {
			if in == s {
				return true
			}
			if in == l {
				return blockInCycle(f, s.Block)
			}
		}
	}
	return blockReaches(f, s.Block, l.Block)
}

func blockReaches(f *ir.Func, from, to *ir.Block) bool {
	seen := map[*ir.Block]bool{}
	var dfs func(b *ir.Block) bool
	dfs = func(b *ir.Block) bool {
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs() {
			if s == to || dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

func blockInCycle(f *ir.Func, b *ir.Block) bool {
	return blockReaches(f, b, b)
}

// mainIsCalled reports whether any call site targets main (legal in C, and
// it would invalidate main-runs-once reasoning).
func mainIsCalled(m *ir.Module) bool {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Callee != nil && in.Callee.Name == "main" {
					return true
				}
			}
		}
	}
	return false
}

// propagatePointerGlobal folds loads of a never-stored internal pointer
// global to its initializer's address constant (GlobalOpt does the same).
// The materialized &g+off values are what the pointer-comparison folders
// (and their precision knobs, paper Listing 3) subsequently act on.
func propagatePointerGlobal(m *ir.Module, g *ir.Global, ai *accessIndex, inv *Invalidation) bool {
	loads, stores, ok := ai.accesses(g, false)
	if !ok || len(stores) > 0 || len(loads) == 0 {
		return false
	}
	var target *ir.Global
	var off int64
	if len(g.Init) > 0 {
		if !g.Init[0].IsAddr {
			return false
		}
		target = g.Init[0].Global
		off = g.Init[0].Off
	}
	for _, l := range loads {
		b := l.Block
		var repl *ir.Instr
		if target == nil {
			repl = b.NewInstr(ir.OpNull, l.Typ)
			b.InsertBefore(repl, l)
		} else {
			ga := b.NewInstr(ir.OpGlobalAddr, types.PointerTo(target.Elem))
			ga.Global = target
			b.InsertBefore(ga, l)
			repl = ga
			if off != 0 {
				idx := b.NewInstr(ir.OpConst, types.I64Type)
				idx.IntVal = off
				b.InsertBefore(idx, l)
				gep := b.NewInstr(ir.OpGEP, ga.Typ, ga, idx)
				b.InsertBefore(gep, l)
				repl = gep
			}
		}
		ir.ReplaceAllUses(l, repl)
		l.Remove()
		inv.Func(l.Block.Func)
	}
	return true
}

// propagateConstArray folds loads from a never-written array whose
// initialized elements are all the same constant (with the
// zero-initialized tail, that means: all inits equal, and equal to 0 if
// the initializer does not cover the whole array).
func propagateConstArray(m *ir.Module, g *ir.Global, ai *accessIndex, inv *Invalidation) bool {
	if g.Elem.Kind == types.Pointer {
		return false
	}
	var val int64
	if len(g.Init) > 0 {
		if g.Init[0].IsAddr {
			return false
		}
		val = g.Init[0].Int
	}
	for _, c := range g.Init {
		if c.IsAddr || c.Int != val {
			return false
		}
	}
	if len(g.Init) < g.Len && val != 0 {
		return false
	}
	loads, stores, ok := ai.accesses(g, true)
	if !ok || len(stores) > 0 || len(loads) == 0 {
		return false
	}
	for _, l := range loads {
		c := l.Block.NewInstr(ir.OpConst, l.Typ)
		c.IntVal = l.Typ.WrapValue(val)
		l.Block.InsertBefore(c, l)
		ir.ReplaceAllUses(l, c)
		l.Remove()
		inv.Func(l.Block.Func)
	}
	return true
}
