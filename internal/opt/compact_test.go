package opt

import (
	"testing"

	"dcelens/internal/cgen"
	"dcelens/internal/ir"
	"dcelens/internal/lower"
	"dcelens/internal/token"
	"dcelens/internal/types"
)

// newFunc builds a one-function module around a single entry block.
func newFunc() (*ir.Module, *ir.Func, *ir.Block) {
	f := &ir.Func{Name: "main", Ret: types.I32Type}
	b := f.NewBlock()
	m := &ir.Module{Funcs: []*ir.Func{f}}
	return m, f, b
}

func mkConst(b *ir.Block, v int64, t *types.Type) *ir.Instr {
	c := b.Append(ir.OpConst, t)
	c.IntVal = t.WrapValue(v)
	return c
}

func TestCompactFoldsConstBin(t *testing.T) {
	m, f, b := newFunc()
	x := mkConst(b, 6, types.I32Type)
	y := mkConst(b, 7, types.I32Type)
	mul := b.Append(ir.OpBin, types.I32Type, x, y)
	mul.BinOp = token.Star
	b.Append(ir.OpRet, nil, mul)
	f.RecomputePreds()

	if !compactFunc(f, Options{}) {
		t.Fatal("compact reported no change")
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("broken IR: %v\n%s", err, m)
	}
	// The fold is in place: the same instruction becomes the constant, so
	// the ret operand needs no rewriting.
	if mul.Op != ir.OpConst || mul.IntVal != 42 {
		t.Fatalf("want in-place fold to const 42, got %v %d", mul.Op, mul.IntVal)
	}
}

func TestCompactFoldsCastOfConst(t *testing.T) {
	m, f, b := newFunc()
	x := mkConst(b, 300, types.I64Type)
	cast := b.Append(ir.OpCast, types.I8Type, x)
	ret := b.Append(ir.OpRet, nil, cast)
	f.RecomputePreds()

	if !compactFunc(f, Options{}) {
		t.Fatal("compact reported no change")
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("broken IR: %v\n%s", err, m)
	}
	if cast.Op != ir.OpConst {
		t.Fatalf("cast not folded: %v", cast.Op)
	}
	// 300 truncated to i8 must be canonical for the type (44).
	if got := cast.IntVal; got != types.I8Type.WrapValue(300) {
		t.Fatalf("cast fold = %d, want %d", got, types.I8Type.WrapValue(300))
	}
	if ret.Args[0] != cast {
		t.Fatal("ret operand should be untouched by an in-place fold")
	}
}

func TestCompactFoldsSelectOnConst(t *testing.T) {
	m, f, b := newFunc()
	cond := mkConst(b, 1, types.I32Type)
	a := mkConst(b, 10, types.I32Type)
	c := mkConst(b, 20, types.I32Type)
	sel := b.Append(ir.OpSelect, types.I32Type, cond, a, c)
	ret := b.Append(ir.OpRet, nil, sel)
	f.RecomputePreds()

	if !compactFunc(f, Options{}) {
		t.Fatal("compact reported no change")
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("broken IR: %v\n%s", err, m)
	}
	if ret.Args[0] != a {
		t.Fatalf("select not forwarded to taken arm: ret uses %v", ret.Args[0])
	}
	for _, in := range b.Instrs {
		if in == sel {
			t.Fatal("folded select still present in block")
		}
	}
}

func TestCompactFoldsBranchAndDropsUnreachable(t *testing.T) {
	m := buildIR(t, `
int main(void) {
  if (0) { return 1; }
  return 2;
}`)
	f := m.LookupFunc("main")
	nBefore := len(f.Blocks)
	if !compactFunc(f, Options{}) {
		t.Fatal("compact reported no change")
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("broken IR: %v\n%s", err, m)
	}
	for _, b := range f.Blocks {
		if tm := b.Term(); tm != nil && tm.Op == ir.OpCondBr {
			t.Fatal("condbr on constant survived compact")
		}
	}
	if len(f.Blocks) >= nBefore {
		t.Fatalf("no blocks dropped: %d -> %d", nBefore, len(f.Blocks))
	}
	if got := exec(t, m).ExitCode; got != 2 {
		t.Fatalf("semantics changed: exit %d, want 2", got)
	}
}

// TestCompactPreservesNonConstant: no rule may fire on symbolic operands.
func TestCompactPreservesNonConstant(t *testing.T) {
	m, f, b := newFunc()
	p := b.Append(ir.OpParam, types.I32Type)
	f.ParamTys = []*types.Type{types.I32Type}
	add := b.Append(ir.OpBin, types.I32Type, p, p)
	add.BinOp = token.Plus
	b.Append(ir.OpRet, nil, add)
	f.RecomputePreds()
	_ = m

	if compactFunc(f, Options{}) {
		t.Fatal("compact changed a function with nothing to fold")
	}
	if add.Op != ir.OpBin {
		t.Fatal("symbolic bin was rewritten")
	}
}

// TestCompactIdempotent: a second application of compact on freshly lowered
// (generated) programs must change nothing, structurally.
func TestCompactIdempotent(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		prog := cgen.Generate(cgen.DefaultConfig(seed))
		m, err := lower.Lower(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, f := range m.Funcs {
			if !f.External {
				compactFunc(f, Options{})
			}
		}
		if err := ir.Verify(m); err != nil {
			t.Fatalf("seed %d: broken IR after compact: %v", seed, err)
		}
		once := m.String()
		for _, f := range m.Funcs {
			if !f.External && compactFunc(f, Options{}) {
				t.Fatalf("seed %d: second compact still reported changes", seed)
			}
		}
		if twice := m.String(); twice != once {
			t.Fatalf("seed %d: compact not idempotent:\n--- once ---\n%s\n--- twice ---\n%s",
				seed, once, twice)
		}
	}
}

// TestCompactSoundOnGeneratedPrograms: compact alone must preserve observable
// behaviour (exit status) on random programs.
func TestCompactSoundOnGeneratedPrograms(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		prog := cgen.Generate(cgen.DefaultConfig(seed))
		ref, err := lower.Lower(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt, err := lower.Lower(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, f := range opt.Funcs {
			if !f.External {
				compactFunc(f, Options{})
			}
		}
		want, err := ir.Execute(ref, ir.ExecOptions{})
		if err != nil {
			t.Fatalf("seed %d: ref exec: %v", seed, err)
		}
		got, err := ir.Execute(opt, ir.ExecOptions{})
		if err != nil {
			t.Fatalf("seed %d: compacted exec: %v", seed, err)
		}
		if want.ExitCode != got.ExitCode || want.Checksum != got.Checksum {
			t.Fatalf("seed %d: exit %d != %d after compact", seed, got.ExitCode, want.ExitCode)
		}
	}
}
