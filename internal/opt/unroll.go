package opt

import (
	"dcelens/internal/ir"
	"dcelens/internal/token"
)

// Unroll fully unrolls counted loops with a compile-time trip count:
// the canonical `for (i = C0; i < N; i += S)` shape our frontend emits,
// with all exits through the header. Each iteration becomes a straight-line
// clone with the counter phi replaced by its concrete chain of values, so
// SCCP and InstCombine can finish the folding. Full unrolling is what lets
// compilers prove loop-carried facts like Listing 9e's `c[0]` being
// written on every path.
var Unroll = Pass{Name: "unroll", Fn: unrollFunc}

func unrollFunc(f *ir.Func, o Options) bool {
	if o.UnrollMaxTrip <= 0 {
		return false
	}
	// Loop cloning assumes every block is reachable (see unswitch). The
	// sweep's result is not part of this pass's changed flag (simplifycfg
	// owns that cleanup), but it is a body mutation the dirty tracking
	// must see.
	if removeUnreachable(f) {
		f.MarkMutated()
	}
	// One unroll per invocation; the pipeline iterates.
	return unrollOne(f, o)
}

// unrollBodyLimit caps total code growth per unrolled loop.
const unrollBodyLimit = 600

func unrollOne(f *ir.Func, o Options) bool {
	dt := ir.Dominators(f)
	loops := ir.NaturalLoops(f, dt)
	for _, l := range loops {
		if tryUnroll(f, l, o) {
			return true
		}
	}
	return false
}

// counterShape describes the canonical counted-loop pattern.
type counterShape struct {
	phi     *ir.Instr // counter phi in the header
	inc     *ir.Instr // phi + step
	init    int64
	step    int64
	bound   int64
	trips   int64
	trueTgt *ir.Block // loop body entry
	exit    *ir.Block
}

func matchCountedLoop(l *ir.Loop) (counterShape, bool) {
	var cs counterShape
	h := l.Header
	t := h.Term()
	if t == nil || t.Op != ir.OpCondBr {
		return cs, false
	}
	cmp := t.Args[0]
	if cmp.Op != ir.OpBin || cmp.BinOp != token.Lt || cmp.Block != h {
		return cs, false
	}
	bound, ok := isConst(cmp.Args[1])
	if !ok {
		return cs, false
	}
	// The true edge must stay in the loop and the false edge must exit.
	if l.Blocks[t.Targets[1]] || !l.Blocks[t.Targets[0]] {
		return cs, false
	}
	phi := cmp.Args[0]
	if phi.Op != ir.OpPhi || phi.Block != h || len(phi.Args) != 2 {
		return cs, false
	}
	for i := 0; i < 2; i++ {
		a, b := phi.Args[i], phi.Args[1-i]
		c0, ok0 := isConst(a)
		if !ok0 || l.Blocks[phi.PhiPreds[i]] {
			continue
		}
		if b.Op == ir.OpBin && b.BinOp == token.Plus && b.Args[0] == phi && l.Blocks[phi.PhiPreds[1-i]] {
			if s, ok1 := isConst(b.Args[1]); ok1 && s > 0 {
				cs.phi, cs.inc, cs.init, cs.step = phi, b, c0, s
				cs.bound = bound
				cs.trueTgt = t.Targets[0]
				cs.exit = t.Targets[1]
				return cs, true
			}
		}
	}
	return cs, false
}

func tryUnroll(f *ir.Func, l *ir.Loop, o Options) bool {
	cs, ok := matchCountedLoop(l)
	if !ok {
		return false
	}
	if cs.init >= cs.bound {
		return false // zero-trip loop: SCCP's problem
	}
	trips := (cs.bound - cs.init + cs.step - 1) / cs.step
	if trips < 1 || trips > int64(o.UnrollMaxTrip) {
		return false
	}
	if trips*int64(loopSize(l)) > unrollBodyLimit {
		return false
	}
	// The counter must never wrap in its own type during the loop.
	last, okAdd := mulOv(trips, cs.step)
	if !okAdd {
		return false
	}
	last, okAdd = addOv(cs.init, last)
	if !okAdd || cs.phi.Typ.WrapValue(last) != last {
		return false
	}
	// All exits must leave from the header.
	for b := range l.Blocks {
		if b == l.Header {
			continue
		}
		for _, s := range b.Succs() {
			if !l.Blocks[s] {
				return false
			}
		}
	}
	// Single latch.
	if len(l.Latches) != 1 {
		return false
	}
	pre := preheader(f, l)
	if pre == nil {
		return false
	}

	doUnroll(f, l, cs, pre, trips)
	return true
}

func doUnroll(f *ir.Func, l *ir.Loop, cs counterShape, pre *ir.Block, trips int64) {
	h := l.Header

	// Collect header phis and their (outside, latch) incoming values.
	type phiInfo struct {
		phi        *ir.Instr
		outsideVal *ir.Instr
		latchVal   *ir.Instr
	}
	var phis []phiInfo
	for _, in := range h.Instrs {
		if in.Op != ir.OpPhi {
			break
		}
		pi := phiInfo{phi: in}
		for i, pb := range in.PhiPreds {
			if l.Blocks[pb] {
				pi.latchVal = in.Args[i]
			} else {
				pi.outsideVal = in.Args[i]
			}
		}
		phis = append(phis, pi)
	}

	latch := l.Latches[0]
	var bms []map[*ir.Block]*ir.Block
	var vms []map[*ir.Instr]*ir.Instr

	for k := int64(0); k <= trips; k++ {
		subst := map[*ir.Instr]*ir.Instr{}
		for _, pi := range phis {
			if k == 0 {
				subst[pi.phi] = pi.outsideVal
			} else {
				// vms[k-1] also contains the previous substitution, so a
				// latch value that is itself a header phi resolves too.
				v := pi.latchVal
				if nv, ok := vms[k-1][v]; ok {
					v = nv
				}
				subst[pi.phi] = v
			}
		}
		bm, vm := cloneIteration(f, l, subst, k == trips, cs)
		bms = append(bms, bm)
		vms = append(vms, vm)
		// Merge the phi substitution into the value map so the next
		// iteration (and external-use fixup) can resolve phi references.
		for p, v := range subst {
			vm[p] = v
		}
	}

	// Chain: clone k's latch jumps to clone k+1's header.
	for k := int64(0); k < trips; k++ {
		lt := bms[k][latch].Term()
		for i, tgt := range lt.Targets {
			if tgt == bms[k][h] {
				lt.Targets[i] = bms[k+1][h]
			}
		}
	}

	// Preheader enters clone 0.
	pt := pre.Term()
	for i, tgt := range pt.Targets {
		if tgt == h {
			pt.Targets[i] = bms[0][h]
		}
	}

	// External uses of loop-defined values resolve to the final clone
	// (only header-defined values can dominate the outside).
	final := vms[trips]
	for _, b := range f.Blocks {
		if l.Blocks[b] || isCloneBlock(bms, b) {
			continue
		}
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if na, ok := final[a]; ok {
					in.Args[i] = na
				}
			}
			if in.Op == ir.OpPhi {
				for i, pb := range in.PhiPreds {
					if pb == h {
						in.PhiPreds[i] = bms[trips][h]
					}
				}
			}
		}
	}

	// Remove the original loop blocks, then sweep the unreachable clone
	// bodies (iteration `trips` exists only for its header) so no dangling
	// uses of loop values survive.
	var keep []*ir.Block
	for _, b := range f.Blocks {
		if !l.Blocks[b] {
			keep = append(keep, b)
		}
	}
	f.Blocks = keep
	f.RecomputePreds()
	removeUnreachable(f)
}

func isCloneBlock(bms []map[*ir.Block]*ir.Block, b *ir.Block) bool {
	for _, bm := range bms {
		for _, nb := range bm {
			if nb == b {
				return true
			}
		}
	}
	return false
}

// cloneIteration clones the loop body for one iteration. Header phis are
// not cloned — references to them resolve through subst. When last is set,
// the header's branch exits the loop; otherwise it falls into this clone's
// body.
func cloneIteration(f *ir.Func, l *ir.Loop, subst map[*ir.Instr]*ir.Instr, last bool, cs counterShape) (map[*ir.Block]*ir.Block, map[*ir.Instr]*ir.Instr) {
	bm := map[*ir.Block]*ir.Block{}
	vm := map[*ir.Instr]*ir.Instr{}
	var order []*ir.Block
	for _, b := range f.Blocks {
		if l.Blocks[b] {
			order = append(order, b)
		}
	}
	for _, b := range order {
		bm[b] = f.NewBlock()
	}
	resolve := func(a *ir.Instr) *ir.Instr {
		if s, ok := subst[a]; ok {
			return s
		}
		if n, ok := vm[a]; ok {
			return n
		}
		return a
	}
	for _, b := range order {
		nb := bm[b]
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi && b == l.Header {
				continue // substituted away
			}
			if in == l.Header.Term() {
				br := nb.NewInstr(ir.OpBr, nil)
				if last {
					br.Targets = []*ir.Block{cs.exit}
				} else {
					br.Targets = []*ir.Block{bm[cs.trueTgt]}
				}
				nb.Instrs = append(nb.Instrs, br)
				continue
			}
			ni := nb.NewInstr(in.Op, in.Typ)
			ni.IntVal = in.IntVal
			ni.Global = in.Global
			ni.Callee = in.Callee
			ni.ParamIdx = in.ParamIdx
			ni.Count = in.Count
			ni.BinOp = in.BinOp
			ni.Widened = in.Widened
			for _, a := range in.Args {
				ni.Args = append(ni.Args, resolve(a))
			}
			for _, t := range in.Targets {
				if nt, ok := bm[t]; ok {
					ni.Targets = append(ni.Targets, nt)
				} else {
					ni.Targets = append(ni.Targets, t)
				}
			}
			for _, pp := range in.PhiPreds {
				if np, ok := bm[pp]; ok {
					ni.PhiPreds = append(ni.PhiPreds, np)
				} else {
					ni.PhiPreds = append(ni.PhiPreds, pp)
				}
			}
			vm[in] = ni
			nb.Instrs = append(nb.Instrs, ni)
		}
	}
	// Fix forward references (e.g. phi args in body blocks referring to
	// later-cloned values through back edges within the body).
	for _, b := range order {
		for _, in := range bm[b].Instrs {
			for i, a := range in.Args {
				in.Args[i] = resolve(a)
			}
		}
	}
	return bm, vm
}
