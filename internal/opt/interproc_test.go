package opt

import (
	"testing"

	"dcelens/internal/ir"
)

// fullOpts is a strong configuration used by tests that just want the
// optimizer at full power.
func fullOpts() Options {
	return Options{
		GlobalProp:              GlobalPropFlowAware,
		Alias:                   AliasBaseObject,
		FoldPtrCmpNonzeroOffset: true,
		ConstArrayLoadFold:      true,
		LoadForwarding:          true,
		RedundantStoreElim:      true,
		InlineBudget:            60,
	}
}

// stdPasses is a realistic schedule using all interprocedural passes.
func stdPasses() []Pass {
	return []Pass{
		Mem2Reg, IPSCCP, SCCP, InstCombine, SimplifyCFG,
		Inline, GVN, DSE, DCE, SimplifyCFG, GlobalDCE,
	}
}

func TestEscapeAnalysis(t *testing.T) {
	m := buildIR(t, `
void ext(int *p);
static int a;      // address passed to an external: escapes
static int b;      // address stored into memory: exposed and escapes conservatively? stored only into internal storage: exposed, not escaping
static int *pb;
static int c;      // only direct loads/stores: neither
int d;             // external linkage: escapes
int main(void) {
  ext(&a);
  pb = &b;
  c = c + 1;
  return 0;
}`)
	ComputeEscapes(m)
	g := func(name string) *ir.Global { return m.LookupGlobal(name) }
	if !g("a").Escapes {
		t.Error("a should escape (passed to external)")
	}
	if !g("b").AddrExposed {
		t.Error("b should be address-exposed (stored)")
	}
	if g("c").Escapes || g("c").AddrExposed {
		t.Error("c should be private")
	}
	if !g("d").Escapes {
		t.Error("d has external linkage and must escape")
	}
}

func TestEscapeThroughInternalCall(t *testing.T) {
	m := buildIR(t, `
void ext(int *p);
static void leak(int *p) { ext(p); }
static void hold(int *p) { *p = 1; }
static int a;
static int b;
int main(void) {
  leak(&a);
  hold(&b);
  return 0;
}`)
	// Escape analysis runs after mem2reg in every pipeline: before
	// promotion the parameter spill slots make every pointer parameter
	// look stored-to-memory.
	runPasses(t, m, Options{}, Mem2Reg)
	ComputeEscapes(m)
	if !m.LookupGlobal("a").Escapes {
		t.Error("a escapes transitively through leak()")
	}
	if m.LookupGlobal("b").Escapes {
		t.Error("b does not escape: hold() only dereferences")
	}
}

// TestIPSCCPLevels reproduces the paper's Listing 4a / 6a matrix: a static
// global read before being stored a constant.
func TestIPSCCPLevels(t *testing.T) {
	// `a = 0` after the check: the store writes the initial value.
	sameConstSrc := `
void DCEMarker0(void);
static int a = 0;
int main(void) {
  if (a) {
    DCEMarker0();
  }
  a = 0;
  return 0;
}`
	// `a = 1` after the check: only flow-aware analysis sees the load
	// cannot observe the store.
	flowSrc := `
void DCEMarker0(void);
static int a = 0;
int main(void) {
  if (a) {
    DCEMarker0();
  }
  a = 1;
  return 0;
}`
	cases := []struct {
		name   string
		src    string
		level  GlobalPropLevel
		folded bool
	}{
		{"NoStores misses same-const store", sameConstSrc, GlobalPropNoStores, false},
		{"SameConst folds same-const store", sameConstSrc, GlobalPropSameConst, true},
		{"SameConst misses different store", flowSrc, GlobalPropSameConst, false},
		{"FlowAware folds unreachable store", flowSrc, GlobalPropFlowAware, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := buildIR(t, tc.src)
			o := fullOpts()
			o.GlobalProp = tc.level
			runPasses(t, m, o, stdPasses()...)
			if got := !markerSurvives(m, "DCEMarker0"); got != tc.folded {
				t.Errorf("marker eliminated = %v, want %v\n%s", got, tc.folded, m)
			}
			res := exec(t, m)
			if res.ExitCode != 0 {
				t.Errorf("exit %d", res.ExitCode)
			}
		})
	}
}

func TestIPSCCPRedundantStoreElim(t *testing.T) {
	src := `
static int a = 0;
int main(void) {
  a = 0;
  return 0;
}`
	// With redundant-store elimination the no-op store disappears.
	m := buildIR(t, src)
	o := fullOpts()
	o.GlobalProp = GlobalPropSameConst
	runPasses(t, m, o, stdPasses()...)
	if countStores(m) != 0 {
		t.Errorf("redundant store survived:\n%s", m)
	}
	// Without it (GCC, paper Listing 4b: movl $0, a(%rip)) it stays.
	m2 := buildIR(t, src)
	o.RedundantStoreElim = false
	runPasses(t, m2, o, stdPasses()...)
	if countStores(m2) == 0 {
		t.Errorf("store should survive without RedundantStoreElim")
	}
}

func countStores(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpStore {
					n++
				}
			}
		}
	}
	return n
}

func TestConstArrayLoadFold(t *testing.T) {
	// Paper Listing 9f: same constant regardless of index.
	src := `
void DCEMarker0(void);
int a;
static int b[2] = {0, 0};
int main(void) {
  if (b[a]) {
    DCEMarker0();
  }
  return 0;
}`
	m := buildIR(t, src)
	o := fullOpts()
	runPasses(t, m, o, stdPasses()...)
	if markerSurvives(m, "DCEMarker0") {
		t.Errorf("const-array load not folded:\n%s", m)
	}
	m2 := buildIR(t, src)
	o.ConstArrayLoadFold = false
	runPasses(t, m2, o, stdPasses()...)
	if !markerSurvives(m2, "DCEMarker0") {
		t.Errorf("marker should survive without ConstArrayLoadFold (the GCC miss)")
	}
}

func TestGVNForwardsAcrossMarkerCalls(t *testing.T) {
	// A static non-escaping global keeps its value across an opaque call:
	// the call cannot name it.
	m := buildIR(t, `
void DCEMarker0(void);
void DCEMarker1(void);
static int g;
int main(void) {
  g = 5;
  DCEMarker0();
  if (g != 5) {
    DCEMarker1();
  }
  return 0;
}`)
	runPasses(t, m, fullOpts(), stdPasses()...)
	if markerSurvives(m, "DCEMarker1") {
		t.Errorf("store-to-load forwarding across an opaque call failed:\n%s", m)
	}
	if !markerSurvives(m, "DCEMarker0") {
		t.Errorf("live marker must survive")
	}
}

func TestGVNRespectsEscapingGlobals(t *testing.T) {
	// g escapes (external linkage): the opaque call may rewrite it, so the
	// second if cannot be folded.
	m := buildIR(t, `
void DCEMarker0(void);
void opaque(void);
int g;
int main(void) {
  g = 5;
  opaque();
  if (g != 5) {
    DCEMarker0();
  }
  return 0;
}`)
	runPasses(t, m, fullOpts(), stdPasses()...)
	if !markerSurvives(m, "DCEMarker0") {
		t.Errorf("folded a load across an opaque call of an escaping global:\n%s", m)
	}
}

func TestDSEKillsOverwrittenStores(t *testing.T) {
	m := buildIR(t, `
static int g;
int main(void) {
  g = 1;
  g = 2;
  return g;
}`)
	runPasses(t, m, fullOpts(), Mem2Reg, DSE, GVN, SCCP, InstCombine, SimplifyCFG, DCE)
	if n := countStores(m); n != 1 {
		t.Errorf("got %d stores, want 1:\n%s", n, m)
	}
	if got := exec(t, m); got.ExitCode != 2 {
		t.Errorf("exit %d, want 2", got.ExitCode)
	}
}

func TestDSEKeepsObservableStores(t *testing.T) {
	// A load between the stores keeps the first store alive.
	m := buildIR(t, `
static int g;
static int h;
int main(void) {
  g = 1;
  h = g;
  g = 2;
  return 0;
}`)
	runPasses(t, m, fullOpts(), DSE)
	if n := countStores(m); n != 3 {
		t.Errorf("got %d stores, want 3:\n%s", n, m)
	}
}

func TestInlineSimple(t *testing.T) {
	m := buildIR(t, `
static int add(int a, int b) { return a + b; }
int main(void) {
  return add(2, 3) + add(4, 5);
}`)
	o := fullOpts()
	runPasses(t, m, o, stdPasses()...)
	if got := exec(t, m); got.ExitCode != 14 {
		t.Fatalf("exit %d, want 14", got.ExitCode)
	}
	// After inlining + globaldce, add should be gone and main call-free.
	if m.LookupFunc("add") != nil {
		t.Errorf("add should be removed by globaldce after inlining")
	}
	for _, b := range m.LookupFunc("main").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				t.Errorf("call survived inlining:\n%s", m)
			}
		}
	}
}

func TestInlineEnablesConstantFolding(t *testing.T) {
	m := buildIR(t, `
void DCEMarker0(void);
static int id(int x) { return x; }
int main(void) {
  if (id(0)) {
    DCEMarker0();
  }
  return 0;
}`)
	runPasses(t, m, fullOpts(), stdPasses()...)
	if markerSurvives(m, "DCEMarker0") {
		t.Errorf("inlining failed to expose the constant:\n%s", m)
	}
}

func TestInlineSkipsRecursion(t *testing.T) {
	m := buildIR(t, `
static int fac(int n) {
  if (n < 2) return 1;
  return n * fac(n - 1);
}
int main(void) { return fac(5); }`)
	runPasses(t, m, fullOpts(), stdPasses()...)
	if got := exec(t, m); got.ExitCode != 120 {
		t.Fatalf("exit %d, want 120", got.ExitCode)
	}
}

func TestGlobalDCERemovesUncalledStatics(t *testing.T) {
	m := buildIR(t, `
void DCEMarker0(void);
static void never(void) { DCEMarker0(); }
int main(void) { return 0; }`)
	runPasses(t, m, Options{}, GlobalDCE)
	if m.LookupFunc("never") != nil {
		t.Error("uncalled static function should be removed")
	}
	if markerSurvives(m, "DCEMarker0") {
		t.Error("marker in removed function should be gone")
	}
}

func TestGlobalDCEKeepSRAClones(t *testing.T) {
	// The clone-retention knob applies to pointer-parameter functions the
	// inliner substituted away: after inlining into a dead call site, the
	// function is unreferenced but its specialized copy survives (paper
	// Listing 9b). A never-called helper is removed regardless.
	src := `
void DCEMarker0(void);
static int cond = 0;
static void touch(int *p) { DCEMarker0(); *p = 1; }
static void orphan(int *p) { *p = 2; }
int main(void) {
  int x = 0;
  if (cond) {
    touch(&x);
  }
  return 0;
}`
	// Schedule the inliner before the constant folding so the (actually
	// dead) call site is still present when it runs — in the real -O3
	// pipeline this happens when the deadness is only provable by
	// post-inline passes (unrolling, VRP).
	sraSchedule := []Pass{Mem2Reg, Inline, IPSCCP, SCCP, InstCombine, SimplifyCFG, GVN, DCE, SimplifyCFG, GlobalDCE}

	m := buildIR(t, src)
	o := fullOpts()
	o.KeepSRAClones = true
	runPasses(t, m, o, sraSchedule...)
	if m.LookupFunc("touch") == nil {
		t.Errorf("inlined-away pointer-param function should be retained with KeepSRAClones:\n%s", m)
	}
	if !markerSurvives(m, "DCEMarker0") {
		t.Error("marker should survive in the retained clone (the paper's Listing 9b shape)")
	}
	if m.LookupFunc("orphan") != nil {
		t.Error("never-called helper should still be removed")
	}

	// Without the knob everything dead disappears.
	m2 := buildIR(t, src)
	o.KeepSRAClones = false
	runPasses(t, m2, o, sraSchedule...)
	if m2.LookupFunc("touch") != nil || markerSurvives(m2, "DCEMarker0") {
		t.Errorf("without the knob the dead function and marker should go:\n%s", m2)
	}
}

// TestInterprocPassesPreserveSemantics extends the semantics property to
// the full interprocedural schedule.
func TestInterprocPassesPreserveSemantics(t *testing.T) {
	checkSemanticsPreserved(t, fullOpts(), stdPasses(), 35)
}

// TestWeakOptionsPreserveSemantics: the degraded configurations must be
// just as correct — they only optimize less.
func TestWeakOptionsPreserveSemantics(t *testing.T) {
	o := Options{
		GlobalProp: GlobalPropNoStores,
		Alias:      AliasConservative,
	}
	checkSemanticsPreserved(t, o, stdPasses(), 20)
}

// TestInlineReturnValueFromLateBlock pins an inliner bug: a return whose
// value is defined in a block that appears later in the callee's block
// list (list order is not topological) must still be remapped into the
// caller's continuation.
func TestInlineReturnValueFromLateBlock(t *testing.T) {
	m := buildIR(t, `
static int g;
static int helper(int x) {
  int r = 0;
  // The loop structure puts value-defining blocks after the block layout
  // of the return path in the lowered IR.
  for (int i = 0; i < 3; i++) {
    r += x + i;
  }
  return r;
}
int main(void) {
  g = helper(4);
  return g;
}`)
	o := fullOpts()
	runPasses(t, m, o, Mem2Reg, Inline, Mem2Reg, SCCP, InstCombine, SimplifyCFG, DCE)
	if got := exec(t, m); got.ExitCode != 15 {
		t.Fatalf("exit %d, want 15", got.ExitCode)
	}
}
