// Package asm emits textual pseudo-assembly from the IR and scans it for
// surviving optimization markers.
//
// The paper's oracle observes exactly one thing: whether `call DCEMarkerN`
// appears in the compiled output (§3.1). This backend therefore does not
// allocate physical registers or schedule instructions; it produces an
// x86-flavoured listing with virtual registers in which every surviving
// call appears as a `call <name>` line, every global as a data-section
// symbol, and every block as a local label. Unreachable blocks are not
// emitted (no code generator emits them), so -O0's trivial frontend folding
// already eliminates some markers, as the paper measures.
package asm

import (
	"fmt"
	"sort"
	"strings"

	"dcelens/internal/ir"
	"dcelens/internal/token"
)

// Emit renders the module as pseudo-assembly.
func Emit(m *ir.Module) string {
	var sb strings.Builder
	sb.WriteString("\t.text\n")
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		emitFunc(&sb, f)
	}
	if len(m.Globals) > 0 {
		sb.WriteString("\t.data\n")
		for _, g := range m.Globals {
			emitGlobal(&sb, g)
		}
	}
	return sb.String()
}

func emitGlobal(sb *strings.Builder, g *ir.Global) {
	if !g.Internal {
		fmt.Fprintf(sb, "\t.globl %s\n", g.Name)
	}
	fmt.Fprintf(sb, "%s:\n", mangle(g.Name))
	size := g.Elem.Size()
	directive := map[int]string{1: ".byte", 2: ".short", 4: ".long", 8: ".quad"}[size]
	for i := 0; i < g.Len; i++ {
		var c ir.Const
		if i < len(g.Init) {
			c = g.Init[i]
		}
		if c.IsAddr {
			if c.Global == nil {
				fmt.Fprintf(sb, "\t.quad 0\n")
			} else if c.Off != 0 {
				fmt.Fprintf(sb, "\t.quad %s+%d\n", mangle(c.Global.Name), c.Off*int64(c.Global.Elem.Size()))
			} else {
				fmt.Fprintf(sb, "\t.quad %s\n", mangle(c.Global.Name))
			}
		} else {
			fmt.Fprintf(sb, "\t%s %d\n", directive, c.Int)
		}
	}
}

// mangle keeps symbol names assembler-friendly (hoisted statics contain
// dots already, which is fine for local symbols; spaces are not possible).
func mangle(name string) string { return name }

func emitFunc(sb *strings.Builder, f *ir.Func) {
	if !f.Internal {
		fmt.Fprintf(sb, "\t.globl %s\n", f.Name)
	}
	fmt.Fprintf(sb, "%s:\n", f.Name)

	// Deterministic code layout: reverse postorder of reachable blocks.
	blocks := f.ReversePostorder()
	emitted := map[*ir.Block]bool{}
	label := func(b *ir.Block) string { return fmt.Sprintf(".L%s_%d", f.Name, b.ID) }

	for idx, b := range blocks {
		emitted[b] = true
		fmt.Fprintf(sb, "%s:\n", label(b))
		for _, in := range b.Instrs {
			emitInstr(sb, f, in, label, idx+1 < len(blocks), blocks, idx)
		}
	}
	sb.WriteString("\n")
}

func reg(in *ir.Instr) string { return fmt.Sprintf("%%v%d", in.ID) }

func emitInstr(sb *strings.Builder, f *ir.Func, in *ir.Instr, label func(*ir.Block) string, hasNext bool, blocks []*ir.Block, idx int) {
	switch in.Op {
	case ir.OpConst:
		fmt.Fprintf(sb, "\tmov $%d, %s\n", in.IntVal, reg(in))
	case ir.OpNull:
		fmt.Fprintf(sb, "\txor %s, %s\n", reg(in), reg(in))
	case ir.OpGlobalAddr:
		fmt.Fprintf(sb, "\tlea %s(%%rip), %s\n", mangle(in.Global.Name), reg(in))
	case ir.OpParam:
		fmt.Fprintf(sb, "\tmov %s, %s\n", paramReg(in.ParamIdx), reg(in))
	case ir.OpAlloca:
		fmt.Fprintf(sb, "\tlea -%d(%%rbp), %s\n", 8*(in.ID+1), reg(in))
	case ir.OpPhi:
		// Phis are resolved by the (virtual) register copies implied on
		// each incoming edge; document the join for readability.
		fmt.Fprintf(sb, "\t# phi %s\n", reg(in))
	case ir.OpBin:
		fmt.Fprintf(sb, "\t%s %s, %s, %s\n", mnemonic(in.BinOp), reg(in.Args[0]), reg(in.Args[1]), reg(in))
	case ir.OpCast:
		fmt.Fprintf(sb, "\tmovsx %s, %s\n", reg(in.Args[0]), reg(in))
	case ir.OpGEP:
		fmt.Fprintf(sb, "\tlea (%s,%s,%d), %s\n", reg(in.Args[0]), reg(in.Args[1]), in.Typ.Elem.Size(), reg(in))
	case ir.OpSelect:
		fmt.Fprintf(sb, "\ttest %s, %s\n", reg(in.Args[0]), reg(in.Args[0]))
		fmt.Fprintf(sb, "\tcmovnz %s, %s\n", reg(in.Args[1]), reg(in))
		fmt.Fprintf(sb, "\tcmovz %s, %s\n", reg(in.Args[2]), reg(in))
	case ir.OpLoad:
		fmt.Fprintf(sb, "\tmov (%s), %s\n", reg(in.Args[0]), reg(in))
	case ir.OpStore:
		fmt.Fprintf(sb, "\tmov %s, (%s)\n", reg(in.Args[1]), reg(in.Args[0]))
	case ir.OpCall:
		for i, a := range in.Args {
			fmt.Fprintf(sb, "\tmov %s, %s\n", reg(a), paramReg(i))
		}
		fmt.Fprintf(sb, "\tcall %s\n", in.Callee.Name)
		if in.Typ != nil {
			fmt.Fprintf(sb, "\tmov %%rax, %s\n", reg(in))
		}
	case ir.OpRet:
		if len(in.Args) > 0 {
			fmt.Fprintf(sb, "\tmov %s, %%rax\n", reg(in.Args[0]))
		}
		fmt.Fprintf(sb, "\tret\n")
	case ir.OpBr:
		// Fallthrough elision when the target is the next emitted block.
		if !(idx+1 < len(blocks) && blocks[idx+1] == in.Targets[0]) {
			fmt.Fprintf(sb, "\tjmp %s\n", label(in.Targets[0]))
		}
	case ir.OpCondBr:
		fmt.Fprintf(sb, "\ttest %s, %s\n", reg(in.Args[0]), reg(in.Args[0]))
		fmt.Fprintf(sb, "\tjnz %s\n", label(in.Targets[0]))
		if !(idx+1 < len(blocks) && blocks[idx+1] == in.Targets[1]) {
			fmt.Fprintf(sb, "\tjmp %s\n", label(in.Targets[1]))
		}
	}
}

func paramReg(i int) string {
	regs := []string{"%rdi", "%rsi", "%rdx", "%rcx", "%r8", "%r9"}
	if i < len(regs) {
		return regs[i]
	}
	return fmt.Sprintf("%d(%%rsp)", 8*(i-len(regs)))
}

func mnemonic(op token.Kind) string {
	names := map[token.Kind]string{
		token.Plus: "add", token.Minus: "sub", token.Star: "imul",
		token.Slash: "idiv", token.Percent: "irem",
		token.Amp: "and", token.Pipe: "or", token.Caret: "xor",
		token.Shl: "shl", token.Shr: "shr",
		token.EqEq: "sete", token.NotEq: "setne",
		token.Lt: "setl", token.Gt: "setg", token.Le: "setle", token.Ge: "setge",
	}
	if n, ok := names[op]; ok {
		return n
	}
	return "op"
}

// ---------------------------------------------------------------------------
// Marker scanning — the oracle's observation (paper step ③).

// Calls extracts the multiset of callee names appearing as call
// instructions in the assembly.
func Calls(asmText string) map[string]int {
	out := map[string]int{}
	for _, line := range strings.Split(asmText, "\n") {
		line = strings.TrimSpace(line)
		if name, ok := strings.CutPrefix(line, "call "); ok {
			out[strings.TrimSpace(name)] = out[strings.TrimSpace(name)] + 1
		}
	}
	return out
}

// SurvivingMarkers returns the marker names (per isMarker) present in the
// assembly, sorted.
func SurvivingMarkers(asmText string, isMarker func(string) bool) []string {
	var out []string
	for name := range Calls(asmText) {
		if isMarker(name) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Metrics are Barany-style static features of the generated code (related
// work in the paper §5: differential testing on assembly features). They
// support the comparison experiments but are not part of the DCE oracle.
type Metrics struct {
	Instructions int
	Calls        int
	Loads        int
	Stores       int
	Branches     int
}

// Measure computes static metrics of the assembly.
func Measure(asmText string) Metrics {
	var mt Metrics
	for _, line := range strings.Split(asmText, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, ".") || strings.HasPrefix(line, "#") ||
			strings.HasSuffix(line, ":") {
			continue
		}
		mt.Instructions++
		switch {
		case strings.HasPrefix(line, "call"):
			mt.Calls++
		case strings.HasPrefix(line, "jmp"), strings.HasPrefix(line, "jnz"), strings.HasPrefix(line, "jz"):
			mt.Branches++
		case strings.HasPrefix(line, "mov ("):
			mt.Loads++
		case strings.HasPrefix(line, "mov %") && strings.Contains(line, ", ("):
			mt.Stores++
		}
	}
	return mt
}
