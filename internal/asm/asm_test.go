package asm

import (
	"strings"
	"testing"

	"dcelens/internal/lower"
	"dcelens/internal/parser"
	"dcelens/internal/sema"
)

func emit(t *testing.T, src string) string {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sema.Check(prog); err != nil {
		t.Fatal(err)
	}
	m, err := lower.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	return Emit(m)
}

func TestEmitStructure(t *testing.T) {
	text := emit(t, `
void DCEMarker0(void);
static int g = 5;
int arr[3] = {1, 2, 3};
static int *p = &arr[1];
int main(void) {
  DCEMarker0();
  return g;
}`)
	for _, want := range []string{
		"\t.text", "\t.data",
		".globl main", "main:",
		"call DCEMarker0",
		"g:", "\t.long 5",
		"arr:", "\t.long 1",
		"p:", "\t.quad arr+4", // element offset 1 * 4 bytes
		"ret",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in assembly:\n%s", want, text)
		}
	}
	// Internal symbols must not be exported.
	if strings.Contains(text, ".globl g") {
		t.Error("static global exported")
	}
	if !strings.Contains(text, ".globl arr") {
		t.Error("external global not exported")
	}
}

func TestCallsScan(t *testing.T) {
	text := emit(t, `
void DCEMarker0(void);
void DCEMarker1(void);
static void helper(void) { DCEMarker1(); }
int main(void) {
  DCEMarker0();
  DCEMarker0();
  helper();
  return 0;
}`)
	calls := Calls(text)
	if calls["DCEMarker0"] != 2 {
		t.Errorf("DCEMarker0 counted %d times, want 2", calls["DCEMarker0"])
	}
	if calls["DCEMarker1"] != 1 || calls["helper"] != 1 {
		t.Errorf("calls: %v", calls)
	}
	markers := SurvivingMarkers(text, func(n string) bool { return strings.HasPrefix(n, "DCEMarker") })
	if len(markers) != 2 {
		t.Errorf("markers: %v", markers)
	}
}

func TestUnreachableBlocksNotEmitted(t *testing.T) {
	// Code after return is unreachable; the backend must not emit it even
	// without any optimization.
	text := emit(t, `
void DCEMarker0(void);
int main(void) {
  return 0;
  DCEMarker0();
}`)
	if strings.Contains(text, "call DCEMarker0") {
		t.Errorf("unreachable marker emitted:\n%s", text)
	}
}

func TestMeasure(t *testing.T) {
	text := emit(t, `
static int g;
static int h;
int main(void) {
  g = h + 1;
  if (g) {
    g = 2;
  }
  return 0;
}`)
	m := Measure(text)
	if m.Instructions == 0 || m.Loads == 0 || m.Stores == 0 || m.Branches == 0 {
		t.Errorf("implausible metrics: %+v\n%s", m, text)
	}
}
