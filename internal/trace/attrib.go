// Marker-provenance attribution: mapping killer pass instances into the
// compiler-component vocabulary of the synthetic version histories, so the
// per-pass elimination table can be read next to (and cross-checked
// against) the bisection-based Tables 3/4.
package trace

import "sort"

// ComponentOf maps a pass name to the component vocabulary used by the
// synthetic commit histories (internal/pipeline/history.go), which in turn
// mirrors the component names of the paper's Tables 3/4. Unknown passes
// map to "Other".
func ComponentOf(pass string) string {
	switch pass {
	case "frontend":
		return "C-family Frontend"
	case "mem2reg":
		return "SSA Memory Analysis"
	case "sccp", "ipsccp":
		return "Constant Propagation"
	case "localize-globals":
		return "Value Propagation" // GlobalOpt lives under Value Propagation in the llvm history
	case "vrp":
		return "Value Propagation"
	case "gvn":
		return "Value Numbering"
	case "instcombine":
		return "Peephole Optimizations"
	case "simplifycfg", "compact":
		// compact's eliminations realize through the same machinery as
		// simplifycfg (constant-branch collapse + unreachable-block removal).
		return "Control Flow Graph Analysis"
	case "jumpthread":
		return "Jump Threading"
	case "licm", "unroll", "unswitch", "widen-stores":
		return "Loop Transformations"
	case "inline":
		return "Inlining"
	case "dce", "dse", "globaldce":
		return "Dead Code Elimination"
	}
	return "Other"
}

// PassElims is one row of the campaign-wide eliminations-per-pass table:
// how many dead-marker eliminations a pass (across all of its instances)
// performed, labelled with its component.
type PassElims struct {
	Pass         string
	Component    string
	Eliminations int
}

// SortElims orders rows by descending elimination count, then pass name —
// the deterministic presentation order of the report.
func SortElims(rows []PassElims) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Eliminations != rows[j].Eliminations {
			return rows[i].Eliminations > rows[j].Eliminations
		}
		return rows[i].Pass < rows[j].Pass
	})
}

// Attribution is the answer to "who eliminates this marker?": for a marker
// missed by one configuration but eliminated by another, the pass instance
// in the eliminating configuration that performed the elimination.
type Attribution struct {
	Marker string
	// Eliminator names the configuration whose trace produced the killer
	// (e.g. "llvm-sim@... -O3").
	Eliminator string
	Killer     PassRef
	Component  string
}

// compatibleKillers maps an offending commit's component (as named in the
// synthetic histories) to the trace components that can realize the
// elimination the commit broke. Marker elimination is a pipeline effect:
// an analysis-precision commit (say, Alias Analysis) manifests through the
// value-numbering and cleanup passes that consume the analysis, so each
// entry lists the consumer components alongside the commit's own. The
// realizer components — constant propagation, control-flow cleanup, dead
// code elimination — appear almost everywhere because a dead block is
// ultimately disconnected by a folded branch and deleted by cleanup;
// that is the paper's "DCE is a sink for the whole pipeline" thesis
// restated at the attribution level.
var compatibleKillers = map[string][]string{
	// gcc-sim regressions.
	"Alias Analysis": {
		"Alias Analysis", "Value Numbering", "Constant Propagation",
		"Control Flow Graph Analysis", "Dead Code Elimination",
	},
	// The widen-stores "vectorizer" defeats store-to-load forwarding.
	"Loop Transformations": {
		"Loop Transformations", "Value Numbering", "Constant Propagation",
		"Control Flow Graph Analysis", "Dead Code Elimination",
	},
	// Kept argument-promotion clones are dead functions globaldce reclaims.
	"Interprocedural SRoA": {
		"Dead Code Elimination", "Inlining",
	},
	// llvm-sim regressions.
	"Value Propagation": {
		"Value Propagation", "Constant Propagation", "Value Numbering",
		"Control Flow Graph Analysis", "Dead Code Elimination",
	},
	// Early unswitching's freeze blocks folding; the healthy reference
	// eliminates through the constant-propagation/cleanup chain.
	"Pass Management": {
		"Loop Transformations", "Constant Propagation", "Value Numbering",
		"Control Flow Graph Analysis", "Dead Code Elimination",
	},
	"Instruction Operand Folding": {
		"Peephole Optimizations", "Constant Propagation",
		"Control Flow Graph Analysis", "Dead Code Elimination",
	},
	"Inlining": {
		"Inlining", "Constant Propagation", "Value Numbering",
		"Control Flow Graph Analysis", "Dead Code Elimination",
	},
	"Jump Threading": {
		"Jump Threading", "Control Flow Graph Analysis",
		"Constant Propagation", "Dead Code Elimination",
	},
}

// Compatible reports whether a trace attribution (the killer pass's
// component) is consistent with a bisected offending commit's component —
// the cross-validation between the provenance subsystem and the paper's
// Tables 3/4 procedure.
func Compatible(commitComponent, killerComponent string) bool {
	allowed, ok := compatibleKillers[commitComponent]
	if !ok {
		// A component with no planted regression semantics: accept only an
		// exact match.
		return commitComponent == killerComponent
	}
	for _, c := range allowed {
		if c == killerComponent {
			return true
		}
	}
	return false
}
