package trace_test

import (
	"testing"

	"dcelens/internal/cgen"
	"dcelens/internal/core"
	"dcelens/internal/instrument"
	"dcelens/internal/pipeline"
	"dcelens/internal/trace"
)

// tracedCompile runs one generated program through a traced compilation.
func tracedCompile(t *testing.T, seed int64, p pipeline.Personality, lvl pipeline.Level) (*instrument.Program, *core.Truth, *core.Compilation, *trace.Profile) {
	t.Helper()
	ins, err := instrument.Instrument(cgen.Generate(cgen.DefaultConfig(seed)), instrument.Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := core.GroundTruth(ins)
	if err != nil {
		t.Fatal(err)
	}
	comp, prof, err := core.CompileTraced(ins, pipeline.New(p, lvl))
	if err != nil {
		t.Fatal(err)
	}
	return ins, truth, comp, prof
}

// TestRecorderAttributesEveryElimination checks the provenance invariant:
// every marker of the instrumentation table is either surviving at the end
// of the pipeline or attributed to exactly one killer pass instance, and
// the trace's final surviving set matches the assembly oracle.
func TestRecorderAttributesEveryElimination(t *testing.T) {
	for _, p := range []pipeline.Personality{pipeline.GCC, pipeline.LLVM} {
		ins, _, comp, prof := tracedCompile(t, 7, p, pipeline.O3)
		prov := prof.Provenance()
		for _, m := range ins.Markers {
			_, killed := prov.KillerOf(m.Name)
			if comp.Alive[m.Name] == killed {
				t.Errorf("%s: marker %s: alive=%v killed=%v — want exactly one",
					p, m.Name, comp.Alive[m.Name], killed)
			}
		}
		if len(prov.Markers) != len(prov.Killer) {
			t.Errorf("%s: provenance slice/map mismatch: %d vs %d", p, len(prov.Markers), len(prov.Killer))
		}
		for _, name := range prof.FinalSurviving {
			if !comp.Alive[name] {
				t.Errorf("%s: %s survives in trace but not in assembly", p, name)
			}
		}
		if len(prof.FinalSurviving) != len(comp.Alive) {
			t.Errorf("%s: surviving count mismatch: trace %d, asm %d", p, len(prof.FinalSurviving), len(comp.Alive))
		}
	}
}

// TestRecorderPassInstances checks that profile entries carry coherent
// schedule positions and that eliminations recorded per pass agree with
// the provenance.
func TestRecorderPassInstances(t *testing.T) {
	_, _, _, prof := tracedCompile(t, 11, pipeline.LLVM, pipeline.O3)
	cfg := pipeline.New(pipeline.LLVM, pipeline.O3)
	sched := cfg.Schedule()
	perPass := map[string]trace.PassRef{}
	for i := range prof.Passes {
		pp := &prof.Passes[i]
		if pp.Ref.ScheduleIndex < 0 || pp.Ref.ScheduleIndex >= len(sched) {
			t.Fatalf("pass %s: schedule index %d out of range", pp.Ref.Pass, pp.Ref.ScheduleIndex)
		}
		if sched[pp.Ref.ScheduleIndex] != pp.Ref.Pass {
			t.Fatalf("pass %s at index %d, schedule says %s", pp.Ref.Pass, pp.Ref.ScheduleIndex, sched[pp.Ref.ScheduleIndex])
		}
		if pp.Ref.Iteration < 0 || pp.Ref.Iteration >= cfg.Iterations() {
			t.Fatalf("pass %s: iteration %d out of range", pp.Ref.Pass, pp.Ref.Iteration)
		}
		for _, m := range pp.Eliminated {
			perPass[m] = pp.Ref
		}
	}
	prov := prof.Provenance()
	if len(perPass) == 0 {
		t.Fatal("no eliminations recorded in any pass profile")
	}
	for m, ref := range perPass {
		got, ok := prov.KillerOf(m)
		if !ok || got != ref {
			t.Errorf("marker %s: per-pass says %v, provenance says %v (ok=%v)", m, ref, got, ok)
		}
	}
}

// TestFrontendAttribution: markers absent at pipeline entry are owned by
// the frontend pseudo pass.
func TestFrontendAttribution(t *testing.T) {
	ins, _, _, prof := tracedCompile(t, 7, pipeline.GCC, pipeline.O0)
	initial := map[string]bool{}
	for _, m := range prof.InitialSurviving {
		initial[m] = true
	}
	prov := prof.Provenance()
	for _, m := range ins.Markers {
		if initial[m.Name] {
			continue
		}
		ref, ok := prov.KillerOf(m.Name)
		if !ok || !ref.IsFrontend() {
			t.Errorf("marker %s absent at entry: killer %v ok=%v, want frontend", m.Name, ref, ok)
		}
	}
}

func TestComponentOf(t *testing.T) {
	cases := map[string]string{
		"sccp":             "Constant Propagation",
		"ipsccp":           "Constant Propagation",
		"gvn":              "Value Numbering",
		"simplifycfg":      "Control Flow Graph Analysis",
		"compact":          "Control Flow Graph Analysis",
		"globaldce":        "Dead Code Elimination",
		"unswitch":         "Loop Transformations",
		"widen-stores":     "Loop Transformations",
		"localize-globals": "Value Propagation",
		"frontend":         "C-family Frontend",
		"nonexistent-pass": "Other",
	}
	for pass, want := range cases {
		if got := trace.ComponentOf(pass); got != want {
			t.Errorf("ComponentOf(%q) = %q, want %q", pass, got, want)
		}
	}
}

func TestCompatible(t *testing.T) {
	// An alias-precision regression is realized through value numbering
	// and cleanup, not through, say, inlining.
	if !trace.Compatible("Alias Analysis", "Value Numbering") {
		t.Error("Alias Analysis should accept Value Numbering killers")
	}
	if !trace.Compatible("Alias Analysis", "Dead Code Elimination") {
		t.Error("Alias Analysis should accept Dead Code Elimination killers")
	}
	if trace.Compatible("Alias Analysis", "Inlining") {
		t.Error("Alias Analysis should reject Inlining killers")
	}
	if trace.Compatible("Interprocedural SRoA", "Constant Propagation") {
		t.Error("Interprocedural SRoA should reject Constant Propagation killers")
	}
	// Unmapped components require exact match.
	if !trace.Compatible("Target Info", "Target Info") || trace.Compatible("Target Info", "Inlining") {
		t.Error("unmapped components must match exactly")
	}
}
