// Package trace instruments the optimization pipeline itself: a Recorder
// observes every executed pass instance and derives, per compilation, a
// per-pass profile (wall time, IR-size deltas) and a marker provenance —
// the exact (pass, schedule position, iteration) that eliminated each
// optimization marker.
//
// The paper root-causes missed optimizations by bisecting compiler git
// history (§4.2, Tables 3/4), which is expensive and only applies to
// regressions. Provenance is the cheap dual: instead of asking "which
// commit broke the elimination in P?", it asks "which pass performs the
// elimination in Q?" for any configuration Q that succeeds — instant
// root-cause signal for every finding, and a cross-check for the
// bisection-based component categorization (attrib.go).
//
// The Recorder satisfies opt.Observer, so tracing is strictly opt-in: a nil
// observer costs the pipeline one pointer comparison per pass. Pass
// instances the dirty tracker skipped entirely are recorded without
// rescanning the module — the IR is provably identical to the previous
// observation.
package trace

import (
	"fmt"
	"sort"
	"time"

	"dcelens/internal/ir"
	"dcelens/internal/opt"
)

// PassRef identifies one executed pass instance within a compilation:
// which pass, at which position of the schedule, in which iteration of the
// pass manager's fixpoint loop.
type PassRef struct {
	Pass          string
	ScheduleIndex int // position in the schedule; -1 for the frontend
	Iteration     int // pipeline iteration; -1 for the frontend
}

// Frontend is the pseudo pass instance that owns markers already gone when
// the middle-end pipeline starts: the lowerer's trivial constant folding
// plus the code layout's unreachable-block elision (the same effects that
// make -O0 eliminate some markers in the paper's Table 1).
var Frontend = PassRef{Pass: "frontend", ScheduleIndex: -1, Iteration: -1}

// IsFrontend reports whether the instance is the frontend pseudo pass.
func (r PassRef) IsFrontend() bool { return r.ScheduleIndex < 0 }

func (r PassRef) String() string {
	if r.IsFrontend() {
		return r.Pass
	}
	return fmt.Sprintf("%s#%d.%d", r.Pass, r.Iteration, r.ScheduleIndex)
}

// PassProfile records one executed pass instance.
type PassProfile struct {
	Ref      PassRef
	Changed  bool
	Duration time.Duration

	// IR size after the pass ran (defined functions, their blocks, their
	// instructions), plus the delta against the previous observation.
	Funcs, Blocks, Instrs    int
	DFuncs, DBlocks, DInstrs int

	// Eliminated lists the markers whose last surviving call disappeared
	// while this pass ran (sorted). "Surviving" means reachable from some
	// defined function's entry — the same criterion the assembly scan
	// applies, so a pass that merely disconnects a block gets the credit,
	// not the later cleanup that deletes it.
	Eliminated []string
}

// Provenance maps every eliminated marker to its killer pass instance.
type Provenance struct {
	// Markers lists the eliminated markers in sorted order; all iteration
	// over the attribution is slice-ordered so that renderings of the same
	// compilation are byte-identical across runs.
	Markers []string
	Killer  map[string]PassRef
}

// KillerOf returns the pass instance that eliminated the marker.
func (p *Provenance) KillerOf(marker string) (PassRef, bool) {
	ref, ok := p.Killer[marker]
	return ref, ok
}

// Profile is the full trace of one compilation.
type Profile struct {
	// Passes holds one entry per executed pass instance, in execution
	// order.
	Passes []PassProfile
	// InitialSurviving lists the markers still present when the pipeline
	// started (sorted); markers from the instrumentation table missing
	// here were eliminated by the frontend.
	InitialSurviving []string
	// FinalSurviving lists the markers still present after the last pass
	// (sorted). It must agree with the assembly scan of the same module.
	FinalSurviving []string

	prov *Provenance
}

// Provenance returns the marker→killer attribution of the compilation.
func (p *Profile) Provenance() *Provenance { return p.prov }

// TotalDuration sums the per-pass wall times.
func (p *Profile) TotalDuration() time.Duration {
	var d time.Duration
	for i := range p.Passes {
		d += p.Passes[i].Duration
	}
	return d
}

// AttributionRate returns the fraction of the given markers that the
// provenance attributes to some pass instance, and the fraction attributed
// to a concrete pipeline pass (excluding the frontend pseudo pass). The
// markers are typically the eliminated dead markers of a compilation.
func (p *Profile) AttributionRate(markers []string) (attributed, pipeline float64) {
	if len(markers) == 0 {
		return 1, 1
	}
	att, pipe := 0, 0
	for _, m := range markers {
		ref, ok := p.prov.Killer[m]
		if !ok {
			continue
		}
		att++
		if !ref.IsFrontend() {
			pipe++
		}
	}
	return float64(att) / float64(len(markers)), float64(pipe) / float64(len(markers))
}

// SurvivingMarkers scans the module for marker calls reachable from the
// entry of a defined function — exactly what survives into the emitted
// assembly (the backend lays out reachable blocks only). The scan is the
// cheap per-pass observation everything else is built on.
func SurvivingMarkers(m *ir.Module, isMarker func(string) bool) map[string]bool {
	out := map[string]bool{}
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		for _, b := range f.ReversePostorder() {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Callee != nil && isMarker(in.Callee.Name) {
					out[in.Callee.Name] = true
				}
			}
		}
	}
	return out
}

// Recorder accumulates a Profile while observing a pipeline run. It
// implements opt.Observer. A Recorder traces exactly one compilation.
type Recorder struct {
	isMarker func(string) bool
	// markers is the instrumentation table (sorted copy); markers absent
	// at pipeline entry are attributed to the frontend.
	markers []string

	surviving           map[string]bool
	survivingSorted     []string
	funcs, blocks, inst int

	profile Profile
	began   bool
}

// NewRecorder builds a recorder for a program whose instrumentation table
// lists the given marker names; isMarker classifies call targets during
// module scans (pass instrument.IsMarker).
func NewRecorder(markers []string, isMarker func(string) bool) *Recorder {
	sorted := append([]string(nil), markers...)
	sort.Strings(sorted)
	return &Recorder{
		isMarker: isMarker,
		markers:  sorted,
		profile:  Profile{prov: &Provenance{Killer: map[string]PassRef{}}},
	}
}

// BeginPipeline observes the module as the pipeline starts: the baseline
// surviving-marker set and IR size. Markers from the table already gone
// are attributed to the frontend.
func (r *Recorder) BeginPipeline(m *ir.Module) {
	r.surviving = SurvivingMarkers(m, r.isMarker)
	r.survivingSorted = sortedKeys(r.surviving)
	r.funcs, r.blocks, r.inst = moduleSize(m)
	r.profile.InitialSurviving = r.survivingSorted
	for _, name := range r.markers {
		if !r.surviving[name] {
			r.attribute(name, Frontend)
		}
	}
	r.began = true
}

// AfterPass observes the module after one pass instance ran, recording its
// profile entry and attributing any markers that disappeared.
func (r *Recorder) AfterPass(m *ir.Module, pass string, scheduleIndex, iteration int, st opt.PassStats) {
	if !r.began {
		// Defensive: a pipeline that skips BeginPipeline still traces,
		// with an empty baseline.
		r.BeginPipeline(m)
	}
	ref := PassRef{Pass: pass, ScheduleIndex: scheduleIndex, Iteration: iteration}
	if !st.Changed && st.FuncsVisited == 0 {
		// The dirty tracker skipped every function (or the whole module
		// pass): nothing ran, so the module is bit-identical to the
		// previous observation. Reuse it instead of rescanning — the
		// profile entry this writes is exactly what a full scan would
		// produce (no eliminations, zero deltas).
		r.profile.Passes = append(r.profile.Passes, PassProfile{
			Ref:      ref,
			Changed:  false,
			Duration: st.Duration,
			Funcs:    r.funcs,
			Blocks:   r.blocks,
			Instrs:   r.inst,
		})
		return
	}
	now := SurvivingMarkers(m, r.isMarker)
	var eliminated []string
	for _, name := range r.survivingSorted {
		if !now[name] {
			eliminated = append(eliminated, name)
			r.attribute(name, ref)
		}
	}
	// A marker cannot reappear (passes only duplicate existing calls), but
	// guard the attribution against it anyway: presence always wins.
	for name := range now {
		if !r.surviving[name] {
			r.unattribute(name)
		}
	}
	funcs, blocks, inst := moduleSize(m)
	r.profile.Passes = append(r.profile.Passes, PassProfile{
		Ref:        ref,
		Changed:    st.Changed,
		Duration:   st.Duration,
		Funcs:      funcs,
		Blocks:     blocks,
		Instrs:     inst,
		DFuncs:     funcs - r.funcs,
		DBlocks:    blocks - r.blocks,
		DInstrs:    inst - r.inst,
		Eliminated: eliminated,
	})
	r.surviving = now
	r.survivingSorted = sortedKeys(now)
	r.funcs, r.blocks, r.inst = funcs, blocks, inst
}

// Profile finalizes and returns the accumulated trace.
func (r *Recorder) Profile() *Profile {
	r.profile.FinalSurviving = r.survivingSorted
	sort.Strings(r.profile.prov.Markers)
	return &r.profile
}

func (r *Recorder) attribute(marker string, ref PassRef) {
	if _, dup := r.profile.prov.Killer[marker]; !dup {
		r.profile.prov.Markers = append(r.profile.prov.Markers, marker)
	}
	r.profile.prov.Killer[marker] = ref
}

func (r *Recorder) unattribute(marker string) {
	if _, ok := r.profile.prov.Killer[marker]; !ok {
		return
	}
	delete(r.profile.prov.Killer, marker)
	for i, m := range r.profile.prov.Markers {
		if m == marker {
			r.profile.prov.Markers = append(r.profile.prov.Markers[:i], r.profile.prov.Markers[i+1:]...)
			break
		}
	}
}

func moduleSize(m *ir.Module) (funcs, blocks, instrs int) {
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		funcs++
		blocks += len(f.Blocks)
		for _, b := range f.Blocks {
			instrs += len(b.Instrs)
		}
	}
	return funcs, blocks, instrs
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
