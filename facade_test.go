package dcelens

import (
	"strings"
	"testing"

	"dcelens/internal/instrument"
)

func TestEndToEndQuickstart(t *testing.T) {
	prog := Generate(2022)
	ins, err := Instrument(prog)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := GroundTruth(ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Dead) == 0 || len(truth.Alive) == 0 {
		t.Fatalf("degenerate truth: %d dead, %d alive", len(truth.Dead), len(truth.Alive))
	}
	gcc, err := Compile(ins, GCC(O3))
	if err != nil {
		t.Fatal(err)
	}
	llvm, err := Compile(ins, LLVM(O3))
	if err != nil {
		t.Fatal(err)
	}
	if err := gcc.VerifyAgainstTruth(truth); err != nil {
		t.Fatal(err)
	}
	if err := llvm.VerifyAgainstTruth(truth); err != nil {
		t.Fatal(err)
	}
	graph, err := BuildMarkerCFG(ins)
	if err != nil {
		t.Fatal(err)
	}
	missed := DiffMissed(gcc, llvm, truth)
	_ = graph.Primary(truth, missed)
}

func TestParsePrintRoundTrip(t *testing.T) {
	src := `static int g = 1;
int main(void) {
  g = g + 2;
  return g;
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(prog)
	if !strings.Contains(printed, "g = g + 2;") {
		t.Fatalf("print lost content:\n%s", printed)
	}
	if _, err := Parse(printed); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}

// adoptMarkers treats explicit DCEMarker declarations as the marker table,
// as the examples and tools do for hand-written listings.
func adoptMarkers(p *Program) *Instrumented {
	ins := &Instrumented{Prog: p}
	for _, f := range p.Funcs() {
		if f.Body == nil && IsMarker(f.Name) {
			ins.Markers = append(ins.Markers, instrument.Marker{ID: len(ins.Markers), Name: f.Name})
		}
	}
	return ins
}

// TestPaperListings asserts the qualitative findings of the paper's
// listings (the runnable walkthrough lives in examples/paperlistings).
func TestPaperListings(t *testing.T) {
	cases := []struct {
		name           string
		src            string
		gccEliminates  bool
		llvmEliminates bool
	}{
		{
			name: "Listing3_PtrCmpNonzeroOffset",
			src: `
void DCEMarker0(void);
char a;
char b[2];
int main(void) {
  char *c = &a;
  char *d = &b[1];
  if (c == d) { DCEMarker0(); }
  return 0;
}`,
			gccEliminates:  true,
			llvmEliminates: false,
		},
		{
			name: "Listing4a_FlowInsensitiveGlobal",
			src: `
void DCEMarker0(void);
static int a = 0;
int main(void) {
  if (a) { DCEMarker0(); }
  a = 0;
  return 0;
}`,
			gccEliminates:  false,
			llvmEliminates: true,
		},
		{
			name: "Listing6a_LLVMRegressionDifferentConst",
			src: `
void DCEMarker0(void);
static int a = 0;
int main(void) {
  if (a) { DCEMarker0(); }
  a = 1;
  return 0;
}`,
			gccEliminates:  false,
			llvmEliminates: false,
		},
		{
			name: "Listing9f_ConstArrayLoad",
			src: `
void DCEMarker0(void);
int a;
static int b[2] = {0, 0};
int main(void) {
  if (b[a]) { DCEMarker0(); }
  return 0;
}`,
			gccEliminates:  false,
			llvmEliminates: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			ins := adoptMarkers(prog)
			truth, err := GroundTruth(ins)
			if err != nil {
				t.Fatal(err)
			}
			if truth.Alive["DCEMarker0"] {
				t.Fatal("marker unexpectedly alive")
			}
			gcc, err := Compile(ins, GCC(O3))
			if err != nil {
				t.Fatal(err)
			}
			llvm, err := Compile(ins, LLVM(O3))
			if err != nil {
				t.Fatal(err)
			}
			if got := !gcc.Alive["DCEMarker0"]; got != tc.gccEliminates {
				t.Errorf("gcc-sim eliminates = %v, want %v", got, tc.gccEliminates)
			}
			if got := !llvm.Alive["DCEMarker0"]; got != tc.llvmEliminates {
				t.Errorf("llvm-sim eliminates = %v, want %v", got, tc.llvmEliminates)
			}
		})
	}
}

// TestLLVMRegressionOldVersionEliminates: paper Listing 6a notes that LLVM
// up to 3.7 eliminated the marker. The base version of llvm-sim's history
// has the flow-aware analysis and must eliminate it; the latest must not
// (the regression landed with the GlobalOpt commit).
func TestLLVMRegressionOldVersionEliminates(t *testing.T) {
	prog, err := Parse(`
void DCEMarker0(void);
static int a = 0;
int main(void) {
  if (a) { DCEMarker0(); }
  a = 1;
  return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	ins := adoptMarkers(prog)
	old, err := Compile(ins, CompilerAt(PersonalityLLVM, O3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if old.Alive["DCEMarker0"] {
		t.Error("llvm-sim base (flow-aware) should eliminate the Listing 6a marker")
	}
	cur, err := Compile(ins, LLVM(O3))
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Alive["DCEMarker0"] {
		t.Error("llvm-sim head should miss the Listing 6a marker (regression)")
	}
	// And the bisector pins the GlobalOpt commit.
	out, err := BisectRegression(ins, PersonalityLLVM, O3, "DCEMarker0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Commit.Desc, "GlobalOpt: drop the legacy flow-aware") {
		t.Errorf("bisected to %q", out.Commit.Desc)
	}
}

// TestValueCheckExtension drives the §4.4 future-work instrumentation
// through the compilers: a never-stored global's exit-value check folds
// for both personalities; a check over a computed value separates them
// (gcc-sim's flow-insensitive analysis cannot prove the final value).
func TestValueCheckExtension(t *testing.T) {
	prog, err := Parse(`
static int a = 5;
static int b = 1;
int main(void) {
  b = b + 2;
  b = b * 2; // b ends as 6; enough accesses for llvm-sim's localization
  return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := InstrumentValueChecks(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins.Markers) != 2 {
		t.Fatalf("want 2 checks, got %d", len(ins.Markers))
	}
	truth, err := GroundTruth(ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Dead) != 2 {
		t.Fatalf("value checks must be dead: %v", truth.Dead)
	}
	aCheck, bCheck := ins.Markers[0].Name, ins.Markers[1].Name

	gcc, err := Compile(ins, GCC(O3))
	if err != nil {
		t.Fatal(err)
	}
	llvm, err := Compile(ins, LLVM(O3))
	if err != nil {
		t.Fatal(err)
	}
	// a is never stored: both personalities prove a == 5.
	if gcc.Alive[aCheck] || llvm.Alive[aCheck] {
		t.Errorf("never-stored exit-value check should fold everywhere (gcc=%v llvm=%v)",
			gcc.Alive[aCheck], llvm.Alive[aCheck])
	}
	// b is stored: gcc-sim's flow-insensitive analysis gives up, while
	// llvm-sim localizes b to a stack slot, promotes it, and folds the
	// whole chain to 6.
	if !gcc.Alive[bCheck] {
		t.Error("gcc-sim should miss the computed exit-value check")
	}
	if llvm.Alive[bCheck] {
		t.Error("llvm-sim should prove b's final value")
	}
}
