package dcelens

import (
	"testing"

	"dcelens/internal/corpus"
)

// TestSoundnessSweep compiles a corpus slice under every personality and
// level with full semantic verification: every compiled module must match
// the reference interpreter's exit code and whole-memory checksum, and no
// live marker may ever be eliminated. Campaign-scale sweeps of this
// property caught three real bugs during development (a VRP unsigned-wrap
// misfold, a compound-assignment evaluation-order divergence, and an
// inliner return-value remapping bug).
func TestSoundnessSweep(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	c, err := corpus.Run(corpus.Options{Programs: n, BaseSeed: 90000, VerifySemantics: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Stats.Errors) > 0 {
		t.Fatalf("soundness violations: %v", c.Stats.Errors)
	}
}
