// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4). Each benchmark prints the table it reproduces (once) and times a
// representative unit of the underlying work, so
//
//	go test -bench=. -benchmem
//
// both regenerates the evaluation and measures the engine. Absolute numbers
// differ from the paper — the substrate is a simulator, not the authors'
// Threadripper running real GCC/LLVM — but the shapes (monotonicity across
// levels, which compiler wins the differential, where the regressions land)
// are the reproduction targets; EXPERIMENTS.md records paper-vs-measured.
//
// The corpus size is controlled by DCELENS_BENCH_PROGRAMS (default 60).
package dcelens

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"dcelens/internal/asm"
	"dcelens/internal/bisect"
	"dcelens/internal/core"
	"dcelens/internal/corpus"
	"dcelens/internal/harness"
	"dcelens/internal/instrument"
	"dcelens/internal/ir"
	"dcelens/internal/lower"
	"dcelens/internal/metrics"
	"dcelens/internal/monitor"
	"dcelens/internal/opt"
	"dcelens/internal/pipeline"
	"dcelens/internal/reduce"
	"dcelens/internal/report"
	"dcelens/internal/span"
)

// benchPrograms returns the campaign size for benches.
func benchPrograms() int {
	if v, err := strconv.Atoi(os.Getenv("DCELENS_BENCH_PROGRAMS")); err == nil && v > 0 {
		return v
	}
	return 60
}

var (
	campOnce sync.Once
	camp     *corpus.Campaign
	campErr  error
)

// campaign lazily runs the shared evaluation campaign.
func campaign(b *testing.B) *corpus.Campaign {
	b.Helper()
	campOnce.Do(func() {
		camp, campErr = corpus.Run(corpus.Options{
			Programs: benchPrograms(),
			BaseSeed: 1,
		})
	})
	if campErr != nil {
		b.Fatal(campErr)
	}
	if len(camp.Stats.Errors) > 0 {
		b.Fatalf("campaign errors: %v", camp.Stats.Errors)
	}
	return camp
}

// printOnce prints a table exactly once across benchmark iterations.
var printedTables sync.Map

func printTable(name, text string) {
	if _, loaded := printedTables.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
}

// analyzeOneProgram is the timed unit shared by the table benches: the full
// single-program pipeline (generate, instrument, ground truth, compile at
// -O3 with both personalities).
func analyzeOneProgram(b *testing.B, seed int64) {
	b.Helper()
	prog := Generate(seed)
	ins, err := Instrument(prog)
	if err != nil {
		b.Fatal(err)
	}
	truth, err := GroundTruth(ins)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []*Compiler{GCC(O3), LLVM(O3)} {
		comp, err := Compile(ins, cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = comp.Missed(truth)
	}
}

// BenchmarkDeadBlockPrevalence regenerates §4.1's prevalence numbers
// (paper: 3,109,167 blocks, 89.59% dead / 10.41% alive).
func BenchmarkDeadBlockPrevalence(b *testing.B) {
	c := campaign(b)
	printTable("prevalence", "§4.1 dead-block prevalence (paper: 89.59% dead)\n"+report.Prevalence(c.Stats))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := Generate(int64(i))
		ins, err := Instrument(prog)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := GroundTruth(ins); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1MissedPerLevel regenerates Table 1 (% dead blocks missed
// per level; paper: monotone decrease, O0≈85%, O3≈5%).
func BenchmarkTable1MissedPerLevel(b *testing.B) {
	c := campaign(b)
	printTable("table1", report.Table1(c.Stats))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzeOneProgram(b, int64(1000+i))
	}
}

// BenchmarkTable2PrimaryMissedPerLevel regenerates Table 2 (% dead blocks
// primary missed; paper: O3 1.53% GCC / 1.37% LLVM).
func BenchmarkTable2PrimaryMissedPerLevel(b *testing.B) {
	c := campaign(b)
	printTable("table2", report.Table2(c.Stats))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.Programs[i%len(c.Programs)]
		an := r.PerCfg[corpus.ConfigKey{Personality: pipeline.LLVM, Level: pipeline.O3}]
		_ = r.Graph.Primary(r.Truth, an.Missed)
	}
}

// BenchmarkCompilerDifferential regenerates the §4.2 compiler-vs-compiler
// counts (paper: LLVM eliminates 39,723 markers GCC misses vs 3,781 the
// other way; 4,749 vs 396 primary — LLVM wins by roughly an order of
// magnitude).
func BenchmarkCompilerDifferential(b *testing.B) {
	c := campaign(b)
	printTable("compilerdiff", report.CompilerDiff(c.Stats))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.Programs[i%len(c.Programs)]
		g := r.PerCfg[corpus.ConfigKey{Personality: pipeline.GCC, Level: pipeline.O3}]
		l := r.PerCfg[corpus.ConfigKey{Personality: pipeline.LLVM, Level: pipeline.O3}]
		_ = DiffMissed(g.Compilation, l.Compilation, r.Truth)
		_ = DiffMissed(l.Compilation, g.Compilation, r.Truth)
	}
}

// BenchmarkLevelDifferential regenerates the §4.2 level-vs-level counts
// (paper: GCC misses 308 markers at -O3 that -O1/-O2 eliminate, 24 primary;
// LLVM 456, 54 primary).
func BenchmarkLevelDifferential(b *testing.B) {
	c := campaign(b)
	printTable("leveldiff", report.LevelDiff(c.Stats))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.Programs[i%len(c.Programs)]
		o3 := r.PerCfg[corpus.ConfigKey{Personality: pipeline.LLVM, Level: pipeline.O3}]
		o1 := r.PerCfg[corpus.ConfigKey{Personality: pipeline.LLVM, Level: pipeline.O1}]
		n := 0
		for _, m := range o3.Missed {
			if !o1.Compilation.Alive[m] {
				n++
			}
		}
	}
}

// componentCache memoizes the bisection sweeps across b.N calibration
// rounds (they are the benchmark's setup, not its timed unit).
var componentCache sync.Map

type componentResult struct {
	outs      []*bisect.Outcome
	attempted int
}

// benchComponents bisects the campaign's level regressions for one
// personality and prints the Table 3/4 analogue.
func benchComponents(b *testing.B, p pipeline.Personality, table, paperNote string) {
	c := campaign(b)
	cached, ok := componentCache.Load(p)
	if !ok {
		outs, attempted, err := c.BisectRegressions(p, false, 40)
		if err != nil {
			b.Fatal(err)
		}
		cached = componentResult{outs, attempted}
		componentCache.Store(p, cached)
	}
	outs, attempted := cached.(componentResult).outs, cached.(componentResult).attempted
	rows := bisect.Categorize(outs)
	printTable(table, fmt.Sprintf("%s\n(bisected %d candidates, %d regressions, %d unique commits)\n%s",
		paperNote, attempted, len(outs), bisect.UniqueCommits(outs),
		report.ComponentTable(table, rows)))
	if len(c.FindingsOf(corpus.KindLevelDiff, p, false)) == 0 {
		b.Skip("no level regressions in this corpus slice")
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		// Timed unit: one bisection.
		fs := c.FindingsOf(corpus.KindLevelDiff, p, false)
		f := fs[n%len(fs)]
		n++
		r := c.Result(f.Seed)
		_, _ = bisect.Regression(r.Ins, p, pipeline.O3, f.Marker)
	}
}

// BenchmarkTable3LLVMRegressionComponents regenerates Table 3 (paper: 21
// unique LLVM commits across 11 components / 23 files).
func BenchmarkTable3LLVMRegressionComponents(b *testing.B) {
	benchComponents(b, pipeline.LLVM, "Table 3 analogue: LLVM components",
		"Table 3 (paper: 21 commits, 11 components, 23 files)")
}

// BenchmarkTable4GCCRegressionComponents regenerates Table 4 (paper: 23
// unique GCC commits across 16 components / 34 files).
func BenchmarkTable4GCCRegressionComponents(b *testing.B) {
	benchComponents(b, pipeline.GCC, "Table 4 analogue: GCC components",
		"Table 4 (paper: 23 commits, 16 components, 34 files)")
}

// table5Setup caches the expensive reduction work across the benchmark
// framework's b.N calibration rounds.
var (
	table5Once    sync.Once
	table5Err     error
	table5Triage  map[pipeline.Personality]*corpus.Triage
	table5Reduced []*corpus.ReducedCase
)

func table5Prepare(c *corpus.Campaign) {
	table5Triage = map[pipeline.Personality]*corpus.Triage{}
	reduced := map[pipeline.Personality][]*corpus.ReducedCase{}
	for _, p := range []pipeline.Personality{pipeline.GCC, pipeline.LLVM} {
		budget := 6
		for _, kind := range []corpus.FindingKind{corpus.KindCompilerDiff, corpus.KindLevelDiff} {
			for _, f := range c.FindingsOf(kind, p, true) {
				if budget == 0 {
					break
				}
				budget--
				rc, err := c.ReduceFinding(f, reduce.Options{MaxChecks: 350, MaxRounds: 3})
				if err != nil {
					table5Err = err
					return
				}
				reduced[p] = append(reduced[p], rc)
			}
		}
		tr, err := corpus.TriageCases(p, reduced[p])
		if err != nil {
			table5Err = err
			return
		}
		table5Triage[p] = tr
	}
	table5Reduced = append(append([]*corpus.ReducedCase{}, reduced[pipeline.GCC]...), reduced[pipeline.LLVM]...)
}

// BenchmarkTable5ReportTriage regenerates Table 5's triage counts (paper:
// GCC 53 reported / 43 confirmed / 5 duplicate / 12 fixed; LLVM 31 / 19 /
// 0 / 11) by reducing, deduplicating, and re-testing findings against the
// future-fix configurations.
func BenchmarkTable5ReportTriage(b *testing.B) {
	c := campaign(b)
	table5Once.Do(func() { table5Prepare(c) })
	if table5Err != nil {
		b.Fatal(table5Err)
	}
	printTable("table5", report.Table5(table5Triage[pipeline.GCC], table5Triage[pipeline.LLVM]))

	all := table5Reduced
	if len(all) == 0 {
		b.Skip("no findings to triage in this corpus slice")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Timed unit: re-triage the reduced cases (parse + compile each).
		rc := all[i%len(all)]
		p := rc.Finding.Personality
		if _, err := corpus.TriageCases(p, []*corpus.ReducedCase{rc}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceOverhead measures what pipeline observability costs: the
// "off" case runs the plain single-program unit (and must match the seed's
// numbers — tracing disabled is a nil-observer pointer check per pass), the
// "on" case runs the same unit with the recorder attached, whose per-pass
// IR scans bound the profiling overhead.
func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analyzeOneProgram(b, int64(3000+i))
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seed := int64(3000 + i)
			ins, err := Instrument(Generate(seed))
			if err != nil {
				b.Fatal(err)
			}
			truth, err := GroundTruth(ins)
			if err != nil {
				b.Fatal(err)
			}
			for _, cfg := range []*Compiler{GCC(O3), LLVM(O3)} {
				comp, _, err := CompileTraced(ins, cfg)
				if err != nil {
					b.Fatal(err)
				}
				_ = comp.Missed(truth)
			}
		}
	})
}

// BenchmarkHarnessOverhead measures what fault isolation costs: the "off"
// case runs the plain single-program unit, the "on" case runs the identical
// BenchmarkCampaignParallel measures campaign throughput across worker
// counts: the same fixed corpus on 1, 2, and 4 workers plus GOMAXPROCS.
// Per-seed-per-config units are independent, so on a multi-core machine
// the campaign should scale close to linearly until the core count bounds
// it (scripts/check.sh gates ≥1.5× at -j 4 on machines with ≥4 CPUs; on
// fewer cores the workers time-slice one CPU and no speedup is possible).
// The byte-identity of the outputs across these worker counts is asserted
// separately (TestParallelCampaignByteIdentity).
func BenchmarkCampaignParallel(b *testing.B) {
	const programs = 12
	variants := []struct {
		name    string
		workers int
	}{
		{"j1", 1}, {"j2", 2}, {"j4", 4}, {"jmax", runtime.GOMAXPROCS(0)},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := corpus.Run(corpus.Options{
					Programs: programs, BaseSeed: 9000, Workers: v.workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if c.Stats.Programs != programs {
					b.Fatalf("short campaign: %d of %d programs", c.Stats.Programs, programs)
				}
			}
		})
	}
}

// unit with every compilation wrapped in harness.Protect (defer/recover plus
// the step-budget watchdog counting pass instances). The wrapper should be
// within a few percent of the unprotected run — campaigns pay essentially
// nothing for crash isolation on the fault-free path.
func BenchmarkHarnessOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analyzeOneProgram(b, int64(4000+i))
		}
	})
	b.Run("on", func(b *testing.B) {
		h := &harness.Harness{}
		for i := 0; i < b.N; i++ {
			seed := int64(4000 + i)
			ins, err := Instrument(Generate(seed))
			if err != nil {
				b.Fatal(err)
			}
			truth, err := GroundTruth(ins)
			if err != nil {
				b.Fatal(err)
			}
			for _, cfg := range []*Compiler{GCC(O3), LLVM(O3)} {
				cfg := cfg
				fail := h.Protect(seed, cfg.Name(), "", func(obs opt.Observer) error {
					comp, err := core.CompileObserved(ins, cfg, obs)
					if err != nil {
						return err
					}
					_ = comp.Missed(truth)
					return nil
				})
				if fail != nil {
					b.Fatalf("protected unit failed: %+v", fail)
				}
			}
		}
	})
}

// BenchmarkMetricsOverhead measures what campaign telemetry costs: the
// "off" case runs the plain single-program unit, the "on" case runs the
// identical unit with a live registry threaded through every layer — phase
// timers around generate/truth/lower/opt/codegen, the per-pass histogram
// observer, and the stage counters. Collection is atomic adds behind cached
// pointers, so "on" should stay within a few percent of "off" (the ~5%
// budget scripts/check.sh smoke-tests).
func BenchmarkMetricsOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analyzeOneProgram(b, int64(5000+i))
		}
	})
	b.Run("on", func(b *testing.B) {
		reg := metrics.New()
		for i := 0; i < b.N; i++ {
			seed := int64(5000 + i)
			stop := reg.Time(metrics.PhaseGenerate)
			prog := Generate(seed)
			stop()
			ins, err := Instrument(prog)
			if err != nil {
				b.Fatal(err)
			}
			stop = reg.Time(metrics.PhaseTruth)
			truth, err := GroundTruth(ins)
			stop()
			if err != nil {
				b.Fatal(err)
			}
			for _, cfg := range []*Compiler{GCC(O3), LLVM(O3)} {
				comp, err := core.CompileMetered(ins, cfg, nil, reg)
				if err != nil {
					b.Fatal(err)
				}
				_ = comp.Missed(truth)
			}
		}
	})
}

// BenchmarkMonitorOverhead measures what live monitoring costs a campaign:
// the "off" case runs the metered single-program unit (registry attached,
// no server — the baseline a monitored campaign starts from), the "on" case
// runs the identical unit with the monitoring server bound to a real socket,
// the progress view and event tail wired, and a client polling /progress
// each iteration — a far harsher poll cadence than a real dashboard. The
// endpoints only read atomics behind the progress mutex, so "on" must stay
// within the ~5% budget scripts/check.sh smoke-tests.
func BenchmarkMonitorOverhead(b *testing.B) {
	unit := func(b *testing.B, seed int64, reg *metrics.Registry) {
		b.Helper()
		stop := reg.Time(metrics.PhaseGenerate)
		prog := Generate(seed)
		stop()
		ins, err := Instrument(prog)
		if err != nil {
			b.Fatal(err)
		}
		stop = reg.Time(metrics.PhaseTruth)
		truth, err := GroundTruth(ins)
		stop()
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range []*Compiler{GCC(O3), LLVM(O3)} {
			comp, err := core.CompileMetered(ins, cfg, nil, reg)
			if err != nil {
				b.Fatal(err)
			}
			_ = comp.Missed(truth)
		}
	}
	b.Run("off", func(b *testing.B) {
		reg := metrics.New()
		for i := 0; i < b.N; i++ {
			unit(b, int64(6000+i), reg)
			reg.Counter(metrics.CounterSeedsAnalyzed).Inc()
		}
	})
	b.Run("on", func(b *testing.B) {
		reg := metrics.New()
		prog := harness.NewProgress(b.N, 1, reg)
		events := metrics.NewEventLog(io.Discard)
		events.KeepTail(4096)
		run, err := monitor.Start("127.0.0.1:0", monitor.New("bench", reg, prog, events))
		if err != nil {
			b.Fatal(err)
		}
		defer run.Close()
		url := "http://" + run.Addr() + "/progress"
		client := &http.Client{}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			unit(b, int64(6000+i), reg)
			reg.Counter(metrics.CounterSeedsAnalyzed).Inc()
			events.Emit("seed_end", map[string]any{"seed": 6000 + i})
			resp, err := client.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
}

// BenchmarkSpanOverhead measures what the span timeline costs a campaign:
// the "off" case runs a small serial campaign bare, the "on" case runs the
// identical campaign with a wall-clock recorder attached — every seed,
// unit, phase, pass, and scheduler span rendered and written (to a sink, so
// the gate measures recording, not disk). Rendering is one lock and one
// strings.Builder per span, so "on" must stay within the ~3% budget
// scripts/check.sh smoke-tests.
func BenchmarkSpanOverhead(b *testing.B) {
	const programs = 8
	run := func(b *testing.B, rec *span.Recorder) {
		b.Helper()
		c, err := corpus.Run(corpus.Options{
			Programs: programs, BaseSeed: 8200, Workers: 1, Spans: rec,
		})
		if err != nil {
			b.Fatal(err)
		}
		if c.Stats.Programs != programs {
			b.Fatalf("short campaign: %d of %d programs", c.Stats.Programs, programs)
		}
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, nil)
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, span.New(io.Discard))
		}
	})
}

// BenchmarkRemarkOverhead measures what remark collection costs a
// campaign: the "off" case runs a small serial campaign bare, the "on"
// case runs the identical campaign with Options.Remarks — every pass
// emitting applied/missed remarks, the collector deduplicating them, and
// each seed's profile reduced to chains and summaries. With remarks off
// the emission seam is one pointer comparison per decision, so "off" must
// stay indistinguishable from the pre-remarks pipeline (~3% budget,
// smoke-tested by scripts/check.sh).
func BenchmarkRemarkOverhead(b *testing.B) {
	const programs = 8
	run := func(b *testing.B, remarks bool) {
		b.Helper()
		c, err := corpus.Run(corpus.Options{
			Programs: programs, BaseSeed: 8200, Workers: 1, Remarks: remarks,
		})
		if err != nil {
			b.Fatal(err)
		}
		if c.Stats.Programs != programs {
			b.Fatalf("short campaign: %d of %d programs", c.Stats.Programs, programs)
		}
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, false)
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, true)
		}
	})
}

// BenchmarkPaperListings times the qualitative reproduction of the paper's
// reduced test cases (Listings 1-9; see examples/paperlistings for the
// assertions, and TestPaperListings in facade_test.go).
func BenchmarkPaperListings(b *testing.B) {
	src := `
void DCEMarker0(void);
char a;
char b[2];
int main(void) {
  char *c = &a;
  char *d = &b[1];
  if (c == d) {
    DCEMarker0();
  }
  return 0;
}`
	prog, err := Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	ins := &Instrumented{Prog: prog}
	ins.Markers = append(ins.Markers, instrument.Marker{ID: 0, Name: "DCEMarker0"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gcc, err := Compile(ins, GCC(O3))
		if err != nil {
			b.Fatal(err)
		}
		llvm, err := Compile(ins, LLVM(O3))
		if err != nil {
			b.Fatal(err)
		}
		if gcc.Alive["DCEMarker0"] || !llvm.Alive["DCEMarker0"] {
			b.Fatal("Listing 3 behaviour changed")
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md "Key design decisions")

// ablationMissedCount compiles a fixed slice of programs under a custom
// schedule/options and counts missed dead markers.
func ablationMissedCount(b *testing.B, o opt.Options, passes []opt.Pass, n int) int {
	return ablationMissedCountAny(b, o, passes, n)
}

func ablationMissedCountAny(b testing.TB, o opt.Options, passes []opt.Pass, n int) int {
	b.Helper()
	missed := 0
	for seed := int64(0); seed < int64(n); seed++ {
		prog := Generate(seed)
		ins, err := Instrument(prog)
		if err != nil {
			b.Fatal(err)
		}
		truth, err := GroundTruth(ins)
		if err != nil {
			b.Fatal(err)
		}
		m, err := lower.Lower(ins.Prog)
		if err != nil {
			b.Fatal(err)
		}
		if err := opt.Pipeline(m, o, passes, 2); err != nil {
			b.Fatal(err)
		}
		alive := map[string]bool{}
		for _, f := range m.Funcs {
			for _, blk := range f.Blocks {
				for _, in := range blk.Instrs {
					if in.Op == ir.OpCall && in.Callee != nil && instrument.IsMarker(in.Callee.Name) {
						alive[in.Callee.Name] = true
					}
				}
			}
		}
		for _, d := range truth.Dead {
			if alive[d] {
				missed++
			}
		}
	}
	return missed
}

// ablationSchedule mirrors the full -O3 pipeline: mem2reg's leverage is
// mostly indirect (loop-counter phis feed VRP ranges and full unrolling,
// and localization is useless without subsequent promotion), so the
// ablation only tells the truth when the downstream passes are present.
var ablationSchedule = []opt.Pass{
	opt.Mem2Reg, opt.IPSCCP, opt.SCCP, opt.InstCombine, opt.SimplifyCFG,
	opt.Inline, opt.LocalizeGlobals, opt.Mem2Reg, opt.SCCP, opt.InstCombine,
	opt.SimplifyCFG, opt.JumpThread, opt.VRP, opt.LICM, opt.GVN, opt.DSE,
	opt.DCE, opt.SimplifyCFG, opt.Unroll, opt.SCCP, opt.InstCombine,
	opt.SimplifyCFG, opt.GVN, opt.DCE, opt.SimplifyCFG, opt.GlobalDCE,
}

func ablationOptions() opt.Options {
	return opt.Options{
		GlobalProp:              opt.GlobalPropSameConst,
		Alias:                   opt.AliasBaseObject,
		FoldPtrCmpNonzeroOffset: true,
		ConstArrayLoadFold:      true,
		LoadForwarding:          true,
		RedundantStoreElim:      true,
		InlineBudget:            80,
		UnrollMaxTrip:           8,
		GlobalLocalize:          true,
		ShiftNonzeroRelation:    true,
	}
}

// BenchmarkAblationNoMem2Reg quantifies the "DCE depends on the pipeline"
// thesis in miniature: without scalar promotion, SCCP/GVN see only opaque
// memory traffic and the missed-marker count balloons.
func BenchmarkAblationNoMem2Reg(b *testing.B) {
	const progs = 10
	full := ablationMissedCount(b, ablationOptions(), ablationSchedule, progs)
	var noM2R []opt.Pass
	for _, p := range ablationSchedule {
		if p.Name != "mem2reg" {
			noM2R = append(noM2R, p)
		}
	}
	ablated := ablationMissedCount(b, ablationOptions(), noM2R, progs)
	printTable("ablation-mem2reg", fmt.Sprintf(
		"Ablation: missed dead markers over %d programs\n  full pipeline: %d\n  without mem2reg: %d",
		progs, full, ablated))
	if ablated < full {
		b.Fatalf("ablation inverted: %d < %d", ablated, full)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ablationMissedCount(b, ablationOptions(), noM2R, 1)
	}
}

// BenchmarkAblationNoEscapeAnalysis: when every global is assumed to escape,
// opaque marker calls clobber everything and constant propagation through
// globals collapses — the property the paper's static-global test cases
// rely on.
func BenchmarkAblationNoEscapeAnalysis(b *testing.B) {
	const progs = 10
	full := ablationMissedCount(b, ablationOptions(), ablationSchedule, progs)
	o := ablationOptions()
	o.PessimisticEscape = true
	ablated := ablationMissedCount(b, o, ablationSchedule, progs)
	printTable("ablation-escape", fmt.Sprintf(
		"Ablation: missed dead markers over %d programs\n  with escape analysis: %d\n  everything escapes: %d",
		progs, full, ablated))
	if ablated < full {
		b.Fatalf("ablation inverted: %d < %d", ablated, full)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ablationMissedCount(b, o, ablationSchedule, 1)
	}
}

// BenchmarkAblationPrimaryFiltering quantifies §3.2's filter: how many
// missed markers a triager would look at with and without primary
// filtering (the paper reports 42,478 primary out of ~174k missed for GCC).
func BenchmarkAblationPrimaryFiltering(b *testing.B) {
	c := campaign(b)
	total, primary := 0, 0
	for _, r := range c.Programs {
		an := r.PerCfg[corpus.ConfigKey{Personality: pipeline.GCC, Level: pipeline.O3}]
		total += len(an.Missed)
		primary += len(an.PrimaryMissed)
	}
	printTable("ablation-primary", fmt.Sprintf(
		"Ablation: triage volume at gcc-sim -O3\n  all missed markers: %d\n  after primary filtering: %d",
		total, primary))
	if primary > total {
		b.Fatal("primary filter grew the set")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.Programs[i%len(c.Programs)]
		an := r.PerCfg[corpus.ConfigKey{Personality: pipeline.GCC, Level: pipeline.O3}]
		_ = r.Graph.Primary(r.Truth, an.Missed)
	}
}

// BenchmarkRelatedWorkStaticMetrics implements the related-work comparison
// the paper contrasts itself against (Barany, CC 2018): differential
// testing on static features of the generated assembly. It reports the
// aggregate instruction/call/load/store counts of both personalities over
// the shared campaign — coarse signals the paper argues cannot pinpoint
// missed DCE the way markers can.
func BenchmarkRelatedWorkStaticMetrics(b *testing.B) {
	c := campaign(b)
	var g, l asm.Metrics
	for _, r := range c.Programs {
		ga := r.PerCfg[corpus.ConfigKey{Personality: pipeline.GCC, Level: pipeline.O3}]
		la := r.PerCfg[corpus.ConfigKey{Personality: pipeline.LLVM, Level: pipeline.O3}]
		gm := asm.Measure(ga.Compilation.Asm)
		lm := asm.Measure(la.Compilation.Asm)
		g.Instructions += gm.Instructions
		g.Calls += gm.Calls
		g.Loads += gm.Loads
		g.Stores += gm.Stores
		g.Branches += gm.Branches
		l.Instructions += lm.Instructions
		l.Calls += lm.Calls
		l.Loads += lm.Loads
		l.Stores += lm.Stores
		l.Branches += lm.Branches
	}
	printTable("barany", fmt.Sprintf(
		"Related work (Barany CC'18) static assembly features at -O3:\n"+
			"%-10s %12s %12s\n%-10s %12d %12d\n%-10s %12d %12d\n%-10s %12d %12d\n%-10s %12d %12d\n%-10s %12d %12d",
		"", "gcc-sim", "llvm-sim",
		"instrs", g.Instructions, l.Instructions,
		"calls", g.Calls, l.Calls,
		"loads", g.Loads, l.Loads,
		"stores", g.Stores, l.Stores,
		"branches", g.Branches, l.Branches))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.Programs[i%len(c.Programs)]
		an := r.PerCfg[corpus.ConfigKey{Personality: pipeline.GCC, Level: pipeline.O3}]
		_ = asm.Measure(an.Compilation.Asm)
	}
}

// BenchmarkUnitCompile measures one (seed,config) compilation unit — the
// atom of campaign throughput: lower + optimize + codegen + marker scan for
// a single instrumented program under a single configuration. Allocations
// are reported because the middle-end's allocation churn is the other half
// of the unit cost (scripts/check.sh gates allocs/op against a recorded
// baseline).
func BenchmarkUnitCompile(b *testing.B) {
	prog := Generate(4242)
	ins, err := Instrument(prog)
	if err != nil {
		b.Fatal(err)
	}
	cfg := LLVM(O3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(ins, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPass times each pass of the llvm-sim -O3 schedule in isolation,
// at its natural schedule position: outside the timer, the IR is rebuilt
// and advanced through the schedule prefix ahead of the pass's first
// occurrence; the timed body runs that single pass. A middle-end regression
// thereby localizes to a pass instead of the whole campaign.
func BenchmarkPass(b *testing.B) {
	cfg := pipeline.New(pipeline.LLVM, pipeline.O3)
	passes := cfg.Passes()
	o := cfg.Options()
	prog := Generate(4242)
	ins, err := Instrument(prog)
	if err != nil {
		b.Fatal(err)
	}
	seen := map[string]bool{}
	for idx, p := range passes {
		if seen[p.Name] {
			continue // first occurrence: the most heavily loaded position
		}
		seen[p.Name] = true
		b.Run(p.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m, err := lower.Lower(ins.Prog)
				if err != nil {
					b.Fatal(err)
				}
				if err := opt.Pipeline(m, o, passes[:idx], 1); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := opt.Pipeline(m, o, passes[idx:idx+1], 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCampaignThroughput measures end-to-end campaign units/sec — the
// number the whole middle-end hot-path work optimizes for. Each iteration
// runs a small real campaign (default personalities × levels, so
// programs×10 units) serially (j1) and at full width (jmax); the derived
// units/s metric is what EXPERIMENTS.md tracks before/after.
func BenchmarkCampaignThroughput(b *testing.B) {
	const programs = 12
	variants := []struct {
		name    string
		workers int
	}{
		{"j1", 1}, {"jmax", runtime.GOMAXPROCS(0)},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			var units int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reg := metrics.New()
				c, err := corpus.Run(corpus.Options{
					Programs: programs, BaseSeed: 7100, Workers: v.workers,
					Metrics: reg,
				})
				if err != nil {
					b.Fatal(err)
				}
				if c.Stats.Programs != programs {
					b.Fatalf("short campaign: %d of %d programs", c.Stats.Programs, programs)
				}
				units += reg.Counter(metrics.CounterUnits).Value()
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(units)/secs, "units/s")
			}
		})
	}
}
