// loadtest is the check.sh service smoke gate: it spawns a dce-serve with
// a deliberately tiny admission queue, posts -jobs identical campaign
// specs concurrently, and asserts the service contract end to end —
//
//   - backpressure: at least one submission is rejected with 429, and
//     every 429 carries a Retry-After header;
//   - zero lost findings: every accepted job runs to done with a report
//     byte-identical to an in-process campaign over the same spec;
//   - clean drain: SIGTERM makes the server exit 0 after announcing
//     "drained cleanly".
//
// Usage: go run ./scripts/loadtest.go -bin /path/to/dce-serve
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"dcelens"
)

func main() {
	bin := flag.String("bin", "", "path to the dce-serve binary (required)")
	jobs := flag.Int("jobs", 10, "concurrent submissions")
	queueDepth := flag.Int("queue", 2, "server admission queue depth")
	programs := flag.Int("programs", 6, "seeds per job")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "loadtest: -bin is required")
		os.Exit(2)
	}
	if err := run(*bin, *jobs, *queueDepth, *programs); err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}
}

func run(bin string, jobs, queueDepth, programs int) error {
	work, err := os.MkdirTemp("", "dce-loadtest-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0",
		"-queue", strconv.Itoa(queueDepth), "-executors", "1", "-workdir", work)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "serving on http://"); ok {
			addr = strings.TrimSpace(rest)
			break
		}
	}
	if addr == "" {
		return fmt.Errorf("no serving address announced (scan err %v)", sc.Err())
	}
	var tailMu sync.Mutex
	var tail []string
	stderrDone := make(chan struct{})
	go func() {
		defer close(stderrDone)
		for sc.Scan() {
			tailMu.Lock()
			tail = append(tail, sc.Text())
			tailMu.Unlock()
		}
	}()

	// Slam the queue: every submission carries the same spec, so every
	// accepted job must produce the same report.
	spec := fmt.Sprintf(`{"programs": %d, "base_seed": 42, "workers": 1}`, programs)
	type result struct {
		code       int
		id         string
		retryAfter string
		err        error
	}
	results := make([]result, jobs)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post("http://"+addr+"/jobs", "application/json", strings.NewReader(spec))
			if err != nil {
				results[i] = result{err: err}
				return
			}
			defer resp.Body.Close()
			var st struct {
				ID string `json:"id"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&st)
			results[i] = result{code: resp.StatusCode, id: st.ID, retryAfter: resp.Header.Get("Retry-After")}
		}(i)
	}
	wg.Wait()

	var accepted []string
	rejected := 0
	for _, r := range results {
		switch {
		case r.err != nil:
			return fmt.Errorf("submit: %v", r.err)
		case r.code == http.StatusAccepted:
			accepted = append(accepted, r.id)
		case r.code == http.StatusTooManyRequests:
			if r.retryAfter == "" {
				return fmt.Errorf("429 without a Retry-After header")
			}
			rejected++
		default:
			return fmt.Errorf("submit = %d, want 202 or 429", r.code)
		}
	}
	if rejected == 0 {
		return fmt.Errorf("no submission was rejected: %d jobs against a queue of %d never hit backpressure", jobs, queueDepth)
	}
	if len(accepted) == 0 {
		return fmt.Errorf("every submission was rejected; the queue admitted nothing")
	}

	// The in-process reference for "zero lost findings": same spec, run
	// directly through the campaign engine.
	c, err := dcelens.RunCampaign(dcelens.CampaignOptions{
		Programs: programs, BaseSeed: 42, Workers: 1,
	})
	if err != nil {
		return err
	}
	want := dcelens.Report(c)

	for _, id := range accepted {
		if err := awaitDone(addr, id); err != nil {
			return err
		}
		got, err := fetch(addr, "/jobs/"+id+"/report")
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("%s report differs from the in-process campaign (findings lost or reordered):\n--- served\n%s\n--- reference\n%s", id, got, want)
		}
	}

	// Clean drain: SIGTERM, exit 0, "drained cleanly" announced.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-stderrDone:
	case <-time.After(60 * time.Second):
		return fmt.Errorf("server did not exit within 60s of SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("exit after SIGTERM = %v, want success", err)
	}
	tailMu.Lock()
	drainLog := strings.Join(tail, "\n")
	tailMu.Unlock()
	if !strings.Contains(drainLog, "drained cleanly") {
		return fmt.Errorf("drain announcement missing from stderr:\n%s", drainLog)
	}

	fmt.Printf("service loadtest: %d submitted, %d accepted, %d rejected with 429+Retry-After, reports byte-identical, drained cleanly\n",
		jobs, len(accepted), rejected)
	return nil
}

// awaitDone polls the job until it is done, failing on any other
// terminal state.
func awaitDone(addr, id string) error {
	deadline := time.Now().Add(120 * time.Second)
	for {
		body, err := fetch(addr, "/jobs/"+id)
		if err != nil {
			return err
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			return fmt.Errorf("%s status %q: %v", id, body, err)
		}
		switch st.State {
		case "done":
			return nil
		case "failed", "cancelled":
			return fmt.Errorf("%s reached %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func fetch(addr, path string) (string, error) {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s = %d %s", path, resp.StatusCode, b)
	}
	return string(b), nil
}
