#!/usr/bin/env bash
# Tier-1 gate: formatting, vet, build, and the full test suite.
# Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

# Fail fast when the toolchain predates the module's go directive — without
# this the run dies later with a cryptic parse or vet error instead of
# naming the real problem.
mod_go=$(awk '/^go /{print $2; exit}' go.mod)
tool_go=$(go env GOVERSION | sed 's/^go//')
if [[ "$(printf '%s\n%s\n' "$mod_go" "$tool_go" | sort -V | head -1)" != "$mod_go" ]]; then
    echo "go toolchain $tool_go predates go.mod's required go $mod_go" >&2
    exit 1
fi

unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...

# The campaign layer is the only concurrent code: re-run the scheduler,
# harness, and corpus suites under the race detector (the metrics registry
# and event log are exercised by the corpus suite's resume test), plus the
# monitoring server, run-history, and service-mode job-engine layers that
# read campaign state while it mutates.
go test -race ./internal/sched ./internal/harness ./internal/corpus \
    ./internal/metrics ./internal/monitor ./internal/history \
    ./internal/service ./internal/span ./internal/remark

# Service smoke gate: build dce-serve and drive it with the load-test
# client — concurrent submissions against a tiny queue must produce 429s
# with Retry-After, every accepted job must report byte-identically to an
# in-process campaign (zero lost findings), and SIGTERM must drain to a
# clean exit 0.
serve_bin=$(mktemp -d)/dce-serve
trap 'rm -rf "$(dirname "$serve_bin")"' EXIT
go build -o "$serve_bin" ./cmd/dce-serve
go run ./scripts/loadtest.go -bin "$serve_bin"

# Telemetry overhead smoke: the fully-instrumented unit must stay near the
# uninstrumented one (~5% nominal budget; the gate is lenient because shared
# CI machines add noise that dwarfs the real cost).
go test -run '^$' -bench 'BenchmarkMetricsOverhead' -benchtime 2s . | awk '
    /BenchmarkMetricsOverhead\/off/ { off = $3 }
    /BenchmarkMetricsOverhead\/on/  { on = $3 }
    END {
        if (off == 0 || on == 0) { print "metrics overhead bench did not run" > "/dev/stderr"; exit 1 }
        ratio = on / off
        printf "metrics overhead: %.1f%% (budget ~5%%, gate 25%%)\n", (ratio - 1) * 100
        if (ratio > 1.25) { print "metrics overhead exceeds the gate" > "/dev/stderr"; exit 1 }
    }'

# Monitoring overhead smoke: a campaign with the live HTTP server bound and
# polled must stay near the server-less metered unit (~5% nominal budget,
# same lenient gate as the metrics smoke for the same noise reasons).
go test -run '^$' -bench 'BenchmarkMonitorOverhead' -benchtime 2s . | awk '
    /BenchmarkMonitorOverhead\/off/ { off = $3 }
    /BenchmarkMonitorOverhead\/on/  { on = $3 }
    END {
        if (off == 0 || on == 0) { print "monitor overhead bench did not run" > "/dev/stderr"; exit 1 }
        ratio = on / off
        printf "monitor overhead: %.1f%% (budget ~5%%, gate 25%%)\n", (ratio - 1) * 100
        if (ratio > 1.25) { print "monitor overhead exceeds the gate" > "/dev/stderr"; exit 1 }
    }'

# Span-timeline overhead smoke: a campaign recording its full span timeline
# must stay near the bare campaign (~3% nominal budget; lenient gate for the
# same shared-CI noise reasons as the metrics and monitor smokes).
go test -run '^$' -bench 'BenchmarkSpanOverhead' -benchtime 2s . | awk '
    /BenchmarkSpanOverhead\/off/ { off = $3 }
    /BenchmarkSpanOverhead\/on/  { on = $3 }
    END {
        if (off == 0 || on == 0) { print "span overhead bench did not run" > "/dev/stderr"; exit 1 }
        ratio = on / off
        printf "span overhead: %.1f%% (budget ~3%%, gate 25%%)\n", (ratio - 1) * 100
        if (ratio > 1.25) { print "span overhead exceeds the gate" > "/dev/stderr"; exit 1 }
    }'

# Remark-collection overhead smoke: a campaign with -remarks (every pass
# emitting applied/missed remarks, the collector deduplicating and
# reducing them to chains) costs ~10% on this small fixture; the gate
# bounds drift on top of that with the same noise allowance as the other
# smokes. The remarks-off case is the real zero-cost claim — it shares the
# "off" arm with the bare pipeline, and the emission seam there is one
# pointer comparison per decision.
go test -run '^$' -bench 'BenchmarkRemarkOverhead' -benchtime 2s . | awk '
    /BenchmarkRemarkOverhead\/off/ { off = $3 }
    /BenchmarkRemarkOverhead\/on/  { on = $3 }
    END {
        if (off == 0 || on == 0) { print "remark overhead bench did not run" > "/dev/stderr"; exit 1 }
        ratio = on / off
        printf "remark overhead: %.1f%% (nominal ~10%%, gate 35%%)\n", (ratio - 1) * 100
        if (ratio > 1.35) { print "remark overhead exceeds the gate" > "/dev/stderr"; exit 1 }
    }'

# Allocation-regression gate: allocs/op of the standard compile unit must
# stay within 10% of the recorded baseline (scripts/alloc-baseline.txt).
# Unlike wall time, allocation counts are deterministic for the fixed
# benchmark seed, so this catches churn regressions (a pass reintroducing
# per-iteration map rebuilds, say) that timing gates would hide in noise.
baseline=$(grep -v '^#' scripts/alloc-baseline.txt | head -1)
go test -run '^$' -bench 'BenchmarkUnitCompile$' -benchmem -benchtime 5x . | awk -v base="$baseline" '
    /BenchmarkUnitCompile/ { for (i = 1; i < NF; i++) if ($(i+1) == "allocs/op") allocs = $i }
    END {
        if (allocs == 0) { print "unit compile bench did not run" > "/dev/stderr"; exit 1 }
        ratio = allocs / base
        printf "unit compile allocations: %d/op (baseline %d, gate +10%%)\n", allocs, base
        if (ratio > 1.10) { print "allocs/op regressed beyond the gate; if intentional, re-record scripts/alloc-baseline.txt" > "/dev/stderr"; exit 1 }
    }'

# Parallel scaling gate: the scheduler must buy real throughput, not just
# pass the determinism tests. Requires ≥4 CPUs — with fewer, the workers
# time-slice the same cores and no wall-clock speedup is physically
# possible, so the gate is skipped (the determinism and race suites above
# still exercise the parallel paths).
ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [[ "$ncpu" -ge 4 ]]; then
    go test -run '^$' -bench 'BenchmarkCampaignParallel/(j1|j4)$' -benchtime 3x . | awk '
        /BenchmarkCampaignParallel\/j1/ { j1 = $3 }
        /BenchmarkCampaignParallel\/j4/ { j4 = $3 }
        END {
            if (j1 == 0 || j4 == 0) { print "parallel campaign bench did not run" > "/dev/stderr"; exit 1 }
            speedup = j1 / j4
            printf "campaign -j 4 speedup: %.2fx (gate 1.5x)\n", speedup
            if (speedup < 1.5) { print "parallel campaign speedup below the gate" > "/dev/stderr"; exit 1 }
        }'
else
    echo "campaign -j 4 speedup gate skipped: only $ncpu CPU(s) available (need >= 4)"
fi
