#!/usr/bin/env bash
# Tier-1 gate: formatting, vet, build, and the full test suite.
# Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...

# The campaign layer is the only concurrent code: re-run the harness and
# corpus suites under the race detector (the metrics registry and event log
# are exercised by the corpus suite's resume test), plus the monitoring
# server and run-history layers that read campaign state while it mutates.
go test -race ./internal/harness ./internal/corpus ./internal/metrics \
    ./internal/monitor ./internal/history

# Telemetry overhead smoke: the fully-instrumented unit must stay near the
# uninstrumented one (~5% nominal budget; the gate is lenient because shared
# CI machines add noise that dwarfs the real cost).
go test -run '^$' -bench 'BenchmarkMetricsOverhead' -benchtime 2s . | awk '
    /BenchmarkMetricsOverhead\/off/ { off = $3 }
    /BenchmarkMetricsOverhead\/on/  { on = $3 }
    END {
        if (off == 0 || on == 0) { print "metrics overhead bench did not run" > "/dev/stderr"; exit 1 }
        ratio = on / off
        printf "metrics overhead: %.1f%% (budget ~5%%, gate 25%%)\n", (ratio - 1) * 100
        if (ratio > 1.25) { print "metrics overhead exceeds the gate" > "/dev/stderr"; exit 1 }
    }'

# Monitoring overhead smoke: a campaign with the live HTTP server bound and
# polled must stay near the server-less metered unit (~5% nominal budget,
# same lenient gate as the metrics smoke for the same noise reasons).
go test -run '^$' -bench 'BenchmarkMonitorOverhead' -benchtime 2s . | awk '
    /BenchmarkMonitorOverhead\/off/ { off = $3 }
    /BenchmarkMonitorOverhead\/on/  { on = $3 }
    END {
        if (off == 0 || on == 0) { print "monitor overhead bench did not run" > "/dev/stderr"; exit 1 }
        ratio = on / off
        printf "monitor overhead: %.1f%% (budget ~5%%, gate 25%%)\n", (ratio - 1) * 100
        if (ratio > 1.25) { print "monitor overhead exceeds the gate" > "/dev/stderr"; exit 1 }
    }'
