#!/usr/bin/env bash
# Tier-1 gate: formatting, vet, build, and the full test suite.
# Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...

# The campaign layer is the only concurrent code: re-run the harness and
# corpus suites under the race detector.
go test -race ./internal/harness ./internal/corpus
