// Package dcelens finds missed compiler optimizations through the lens of
// dead code elimination, reproducing Theodoridis, Rigger & Su,
// "Finding Missed Optimizations through the Lens of Dead Code Elimination"
// (ASPLOS 2022).
//
// The package is a facade over the full system: a MiniC frontend and
// reference interpreter, a Csmith-style program generator, an SSA
// optimizing middle-end with two compiler personalities (gcc-sim and
// llvm-sim) plus their synthetic version histories, the marker
// instrumentation and differential-testing engine, a test-case reducer,
// and a regression bisector. See DESIGN.md for the architecture and
// EXPERIMENTS.md for paper-versus-measured results.
//
// Quick start:
//
//	prog := dcelens.Generate(42)                       // random program
//	ins, _ := dcelens.Instrument(prog)                 // add DCE markers
//	truth, _ := dcelens.GroundTruth(ins)               // execute: dead/alive
//	gcc, _ := dcelens.Compile(ins, dcelens.GCC(dcelens.O3))
//	llvm, _ := dcelens.Compile(ins, dcelens.LLVM(dcelens.O3))
//	missed := dcelens.DiffMissed(gcc, llvm, truth)     // gcc's missed markers
package dcelens

import (
	"io"

	"dcelens/internal/ast"
	"dcelens/internal/bisect"
	"dcelens/internal/cgen"
	"dcelens/internal/core"
	"dcelens/internal/corpus"
	"dcelens/internal/harness"
	"dcelens/internal/history"
	"dcelens/internal/instrument"
	"dcelens/internal/metrics"
	"dcelens/internal/monitor"
	"dcelens/internal/parser"
	"dcelens/internal/pipeline"
	"dcelens/internal/reduce"
	"dcelens/internal/remark"
	"dcelens/internal/report"
	"dcelens/internal/sched"
	"dcelens/internal/sema"
	"dcelens/internal/span"
	"dcelens/internal/trace"
)

// Program is a parsed, type-checked MiniC program.
type Program = ast.Program

// Instrumented is a program with optimization markers and their table.
type Instrumented = instrument.Program

// Marker identifies one inserted optimization marker.
type Marker = instrument.Marker

// Truth is the executed ground truth: which markers are alive or dead.
type Truth = core.Truth

// Compilation is a compiled program plus its surviving-marker set.
type Compilation = core.Compilation

// MarkerCFG is the interprocedural marker graph used for primary-marker
// filtering (paper §3.2).
type MarkerCFG = core.MarkerCFG

// Compiler is a fully-assembled compiler configuration.
type Compiler = pipeline.Config

// Level is an optimization level (O0, O1, Os, O2, O3).
type Level = pipeline.Level

// Optimization levels.
const (
	O0 = pipeline.O0
	O1 = pipeline.O1
	Os = pipeline.Os
	O2 = pipeline.O2
	O3 = pipeline.O3
)

// Personalities.
const (
	PersonalityGCC  = pipeline.GCC
	PersonalityLLVM = pipeline.LLVM
)

// GenConfig configures the random program generator.
type GenConfig = cgen.Config

// ---------------------------------------------------------------------------
// Programs

// Parse parses and type-checks MiniC source.
func Parse(src string) (*Program, error) {
	return ParseMetered(src, nil)
}

// ParseMetered is Parse with frontend telemetry: lexing, parsing, and
// semantic analysis are timed into reg's phase.lex, phase.parse, and
// phase.sema histograms. A nil registry collects nothing.
func ParseMetered(src string, reg *MetricsRegistry) (*Program, error) {
	prog, err := parser.ParseMetered(src, reg)
	if err != nil {
		return nil, err
	}
	stop := reg.Time(metrics.PhaseSema)
	err = sema.Check(prog)
	stop()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// Print renders a program back to MiniC source.
func Print(p *Program) string { return ast.Print(p) }

// Generate produces a random, deterministic, input-free MiniC program from
// a seed, with the default Csmith-like configuration.
func Generate(seed int64) *Program { return cgen.Generate(cgen.DefaultConfig(seed)) }

// GenerateWith produces a random program from an explicit configuration.
func GenerateWith(cfg GenConfig) *Program { return cgen.Generate(cfg) }

// DefaultGenConfig returns the evaluation corpus generator configuration.
func DefaultGenConfig(seed int64) GenConfig { return cgen.DefaultConfig(seed) }

// ---------------------------------------------------------------------------
// Instrumentation and ground truth

// Instrument inserts an optimization marker into every source basic block
// (paper step ①). The input program is not modified.
func Instrument(p *Program) (*Instrumented, error) {
	return instrument.Instrument(p, instrument.Options{})
}

// InstrumentValueChecks implements the paper's §4.4 future-work extension:
// synthesize guaranteed-dead blocks `if (g != C) DCEValueCheckN();` at the
// end of main, with C recorded by execution. A compiler eliminates such a
// check exactly when it can prove the global's final value.
func InstrumentValueChecks(p *Program) (*Instrumented, error) {
	return instrument.InstrumentValueChecks(p)
}

// IsMarker reports whether a function name is an optimization marker.
func IsMarker(name string) bool { return instrument.IsMarker(name) }

// GroundTruth executes the instrumented program and classifies every
// marker as alive (executed) or dead.
func GroundTruth(ins *Instrumented) (*Truth, error) { return core.GroundTruth(ins) }

// BuildMarkerCFG derives the interprocedural marker graph for
// primary-marker filtering.
func BuildMarkerCFG(ins *Instrumented) (*MarkerCFG, error) { return core.BuildMarkerCFG(ins) }

// ---------------------------------------------------------------------------
// Compilers

// GCC returns the gcc-sim personality at its latest version.
func GCC(lvl Level) *Compiler { return pipeline.New(pipeline.GCC, lvl) }

// LLVM returns the llvm-sim personality at its latest version.
func LLVM(lvl Level) *Compiler { return pipeline.New(pipeline.LLVM, lvl) }

// CompilerAt returns a personality at a historical version (the first
// `commits` entries of its history applied).
func CompilerAt(p pipeline.Personality, lvl Level, commits int) *Compiler {
	return pipeline.AtCommit(p, lvl, commits)
}

// History returns a personality's synthetic commit history.
func History(p pipeline.Personality) []pipeline.Commit { return pipeline.History(p) }

// Compile lowers, optimizes, and code-generates the instrumented program,
// scanning the assembly for surviving markers (paper steps ②-③).
func Compile(ins *Instrumented, c *Compiler) (*Compilation, error) { return core.Compile(ins, c) }

// DiffMissed returns the dead markers target keeps but reference
// eliminates: feasible missed optimizations of target (paper §3.1).
func DiffMissed(target, reference *Compilation, t *Truth) []string {
	return core.DiffMissed(target, reference, t)
}

// Analyze compiles and computes missed plus primary-missed markers.
func Analyze(ins *Instrumented, c *Compiler, t *Truth, g *MarkerCFG) (*core.Analysis, error) {
	return core.Analyze(ins, c, t, g)
}

// ---------------------------------------------------------------------------
// Campaigns, reduction, bisection

// CampaignOptions configures a corpus campaign.
type CampaignOptions = corpus.Options

// Campaign is a finished corpus run with statistics and findings.
type Campaign = corpus.Campaign

// Finding is one discovered missed-optimization opportunity.
type Finding = corpus.Finding

// RunCampaign generates a corpus, compiles every program under every
// configuration, and aggregates the paper's statistics. Campaigns run on
// the internal/sched worker pool (CampaignOptions.Workers); every output is
// deterministic in corpus order, so a parallel run's report is
// byte-identical to a serial run's.
func RunCampaign(o CampaignOptions) (*Campaign, error) { return corpus.Run(o) }

// CampaignShard selects a deterministic corpus slice for one process of a
// multi-process campaign (CampaignOptions.Shard, dce-campaign -shard): of
// Count cooperating processes, this one runs the seed indices congruent to
// Index modulo Count.
type CampaignShard = sched.Shard

// ParseShard parses an "index/count" shard spec, e.g. "0/2".
func ParseShard(spec string) (CampaignShard, error) { return sched.ParseShard(spec) }

// MergeCheckpoints recombines the checkpoints of a sharded campaign into
// one Campaign whose report is byte-identical to an unsharded run's
// (dce-report -merge).
func MergeCheckpoints(paths []string) (*Campaign, error) { return corpus.MergeCheckpoints(paths) }

// ---------------------------------------------------------------------------
// Harness: fault tolerance, checkpointing, fault injection

// CampaignFailure is one isolated per-(seed, config) failure: a recovered
// panic (crash), an exceeded step budget (timeout), a semantic divergence
// (miscompile), or an unusable program (infeasible).
type CampaignFailure = harness.Failure

// FailureKind classifies a campaign failure.
type FailureKind = harness.Kind

// Failure kinds.
const (
	FailureCrash      = harness.KindCrash
	FailureTimeout    = harness.KindTimeout
	FailureMiscompile = harness.KindMiscompile
	FailureInfeasible = harness.KindInfeasible
)

// CrashBucket groups campaign failures with the same stack signature.
type CrashBucket = corpus.CrashBucket

// Faults is a deterministic fault-injection plan for a campaign
// (CampaignOptions.Faults): chosen pass instances panic, stall past the
// step budget, or corrupt the IR on chosen seeds.
type Faults = harness.Faults

// ParseFaults parses a fault-injection spec: comma-separated
// kind:pass:seed[:config] entries where kind is panic, stall, or corrupt,
// pass may be "*", and seed may be -1 for any.
func ParseFaults(spec string) (*Faults, error) { return harness.ParseFaults(spec) }

// Checkpoint persists completed campaign seeds so an interrupted campaign
// can resume (CampaignOptions.Checkpoint); a resumed campaign's report is
// byte-identical to an uninterrupted one.
type Checkpoint = harness.Checkpoint

// NewCheckpoint creates a checkpoint writing to path (empty: in-memory).
func NewCheckpoint(path string) *Checkpoint { return harness.NewCheckpoint(path) }

// LoadCheckpoint opens an existing checkpoint file, or a fresh one if the
// file does not exist yet.
func LoadCheckpoint(path string) (*Checkpoint, error) { return harness.LoadCheckpoint(path) }

// ReportFailures renders a campaign's failure taxonomy: per-kind counts
// and the deduplicated crash-bucket table.
func ReportFailures(s *corpus.Stats) string { return report.Failures(s) }

// ReduceOptions bounds reduction effort.
type ReduceOptions = reduce.Options

// ReduceResult is a finished reduction.
type ReduceResult = reduce.Result

// Reduce shrinks a program while the interestingness test keeps holding
// (the C-Reduce role, paper §4.3).
func Reduce(p *Program, interesting func(*Program) bool, o ReduceOptions) *ReduceResult {
	return reduce.Reduce(p, interesting, o)
}

// MissedInterestingness builds the standard reduction oracle: marker still
// dead, target still misses it, reference still eliminates it.
func MissedInterestingness(marker string, target, reference *Compiler) func(*Program) bool {
	return corpus.InterestingnessFor(marker, target, reference)
}

// BisectOutcome is one bisected regression.
type BisectOutcome = bisect.Outcome

// BisectRegression finds the history commit that made the compiler stop
// eliminating the marker at the given level.
func BisectRegression(ins *Instrumented, p pipeline.Personality, lvl Level, marker string) (*BisectOutcome, error) {
	return bisect.Regression(ins, p, lvl, marker)
}

// Categorize aggregates bisection outcomes into the Table 3/4 component
// rows.
func Categorize(outcomes []*BisectOutcome) []bisect.ComponentRow {
	return bisect.Categorize(outcomes)
}

// ---------------------------------------------------------------------------
// Tracing and provenance

// TraceProfile is a compilation's per-pass profile plus marker provenance.
type TraceProfile = trace.Profile

// Provenance maps each eliminated marker to the pass instance that killed
// it.
type Provenance = trace.Provenance

// PassRef identifies one executed pass instance (pass name, schedule
// position, pipeline iteration).
type PassRef = trace.PassRef

// PassAttribution names the pass responsible for eliminating a finding's
// marker in the configuration that succeeds.
type PassAttribution = trace.Attribution

// PassElims is one row of the campaign-wide eliminations-per-pass table.
type PassElims = trace.PassElims

// CompileTraced compiles like Compile with the pipeline observer attached:
// the returned profile records every pass instance's wall time and IR-size
// delta, and attributes each eliminated marker to the pass that killed it.
func CompileTraced(ins *Instrumented, c *Compiler) (*Compilation, *TraceProfile, error) {
	return core.CompileTraced(ins, c)
}

// AnalyzeTraced is Analyze with tracing enabled (Analysis.Trace is set).
func AnalyzeTraced(ins *Instrumented, c *Compiler, t *Truth, g *MarkerCFG) (*core.Analysis, error) {
	return core.AnalyzeTraced(ins, c, t, g)
}

// AttributeFinding names the pass instance that eliminates a finding's
// marker in the reference configuration — the trace-based root cause that
// complements BisectRegression (which only works for version regressions).
func AttributeFinding(c *Campaign, f Finding) (*PassAttribution, error) {
	return c.AttributeFinding(f)
}

// EliminationsPerPass aggregates a traced campaign (CampaignOptions.Trace)
// into the eliminations-per-pass table for one personality and level.
func EliminationsPerPass(c *Campaign, p pipeline.Personality, lvl Level) []PassElims {
	return c.EliminationsPerPass(corpus.ConfigKey{Personality: p, Level: lvl})
}

// PassComponent maps a pass name into the compiler-component vocabulary of
// the synthetic histories (Tables 3/4).
func PassComponent(pass string) string { return trace.ComponentOf(pass) }

// ---------------------------------------------------------------------------
// Remarks and explanation

// RemarkProfile is one compilation's optimization-remark reduction: per-pass
// applied/missed/analysis counts, the miss-reason histogram, and each
// surviving marker's nearest-miss chain (CampaignOptions.Remarks,
// dce-campaign -remarks, dce-explain).
type RemarkProfile = remark.Profile

// RemarkChainStep is one decision of a nearest-miss chain: the pass that
// declined to transform, its machine-readable reason code, and the subject
// it was looking at.
type RemarkChainStep = remark.ChainStep

// RemarkSummary aggregates remarks over a seed or a whole job: per-pass
// applied/missed counts plus the miss-reason histogram.
type RemarkSummary = corpus.RemarkSummary

// CompileRemarked compiles like Compile with a remark collector attached:
// every optimizing pass reports what it applied and what it considered but
// rejected (with a reason code), and the returned profile chains the Missed
// decisions relevant to each surviving marker.
func CompileRemarked(ins *Instrumented, c *Compiler) (*Compilation, *RemarkProfile, error) {
	coll := remark.NewCollector(instrument.IsMarker)
	comp, err := core.CompileObserved(ins, c, coll)
	if err != nil {
		return nil, nil, err
	}
	return comp, coll.Profile(), nil
}

// ExplainFinding renders one finding's missed-optimization narrative: the
// finding header plus its nearest-miss chain (campaigns run with
// CampaignOptions.Remarks; dce-explain).
func ExplainFinding(f Finding) string { return report.Explain(f) }

// ExplainFindings renders every finding's narrative, blank-line separated.
func ExplainFindings(fs []Finding) string { return report.ExplainAll(fs) }

// ReportRemarks renders a campaign's remark aggregation: the per-pass
// applied/missed table and the top miss reasons.
func ReportRemarks(s *corpus.Stats) string { return report.Remarks(s) }

// TopMissReasons sorts a miss-reason histogram (RemarkSummary.Reasons,
// Stats.RemarkReasons) by descending count; n > 0 keeps the first n rows.
func TopMissReasons(reasons map[string]int, n int) []report.ReasonCount {
	return report.TopReasons(reasons, n)
}

// ---------------------------------------------------------------------------
// Telemetry

// MetricsRegistry is a campaign telemetry registry: counters, gauges, and
// fixed-bucket duration histograms (CampaignOptions.Metrics). All methods
// are nil-safe, so a nil registry disables collection without branching at
// call sites.
type MetricsRegistry = metrics.Registry

// NewMetrics returns an empty telemetry registry.
func NewMetrics() *MetricsRegistry { return metrics.New() }

// NewDeterministicMetrics returns a registry whose rendered reports redact
// wall-clock-derived values, making them byte-identical across identical
// runs (the -metrics=deterministic mode).
func NewDeterministicMetrics() *MetricsRegistry { return metrics.NewDeterministic() }

// EventLog is a structured JSONL campaign event stream with monotonic
// sequence numbers (CampaignOptions.Events, dce-campaign -events).
type EventLog = metrics.EventLog

// NewEventLog starts an event log writing JSONL to w.
func NewEventLog(w io.Writer) *EventLog { return metrics.NewEventLog(w) }

// ReportMetrics renders a registry's phase breakdown and campaign-wide
// pass-time table (total/mean/p50/p90/p99 per pass).
func ReportMetrics(reg *MetricsRegistry) string { return report.Metrics(reg) }

// SpanRecorder is a hierarchical span timeline recorder writing Chrome
// trace_event JSON (CampaignOptions.Spans, dce-campaign -trace): job →
// seed → unit → phase → pass spans plus scheduler occupancy, loadable in
// Perfetto and analyzable with dce-prof.
type SpanRecorder = span.Recorder

// NewSpanRecorder starts a wall-clock span recorder writing to w.
func NewSpanRecorder(w io.Writer) *SpanRecorder { return span.New(w) }

// OpenSpanTrace opens (or, with resume, appends to) a span-trace file.
// Deterministic recorders redact the timeline to its logical skeleton,
// byte-identical for a given campaign configuration across worker counts
// and resumes.
func OpenSpanTrace(path string, resume, deterministic bool) (*SpanRecorder, error) {
	return span.Open(path, resume, deterministic)
}

// SpanProfile is the analyzed form of a recorded trace: critical path,
// worker occupancy, scheduler waits, and the slowest units (dce-prof).
type SpanProfile = span.Profile

// AnalyzeSpanTrace parses trace_event JSON (as recorded by a SpanRecorder)
// and reduces it to its profile; topK bounds the slowest-units table.
func AnalyzeSpanTrace(data []byte, topK int) (*SpanProfile, error) {
	t, err := span.Parse(data)
	if err != nil {
		return nil, err
	}
	return span.Analyze(t, topK), nil
}

// ReportTimeline renders a span profile as dce-prof prints it.
func ReportTimeline(p *SpanProfile) string { return report.Timeline(p) }

// ---------------------------------------------------------------------------
// Live monitoring and run history

// CampaignProgress is the live, lock-guarded view of a running campaign
// (CampaignOptions.Progress): seeds done, findings so far, failure counts,
// and the ETA shared by the heartbeat and the monitor server.
type CampaignProgress = harness.Progress

// NewCampaignProgress starts tracking a campaign of total seeds on workers
// parallel workers, reading counters from reg.
func NewCampaignProgress(total, workers int, reg *MetricsRegistry) *CampaignProgress {
	return harness.NewProgress(total, workers, reg)
}

// MonitorServer is the embedded campaign monitoring HTTP server
// (dce-campaign -serve): /healthz, /metrics (JSON + Prometheus text),
// /progress, /findings, and /events?since=N.
type MonitorServer = monitor.Server

// NewMonitor assembles a monitoring server over a campaign's registry,
// progress view, and event log; serve its Handler() or pass it to
// monitor.Start.
func NewMonitor(tool string, reg *MetricsRegistry, p *CampaignProgress, events *EventLog) *MonitorServer {
	return monitor.New(tool, reg, p, events)
}

// RunSnapshot is one campaign's persisted run-history record: configuration,
// elimination rates, failure counts, and fingerprinted findings
// (dce-campaign -history, dce-trend).
type RunSnapshot = history.Snapshot

// NewRunSnapshot condenses a finished campaign into its history snapshot.
// Snapshots of -metrics=deterministic campaigns are byte-identical across
// identical runs.
func NewRunSnapshot(tool string, c *Campaign, reg *MetricsRegistry) *RunSnapshot {
	return history.NewSnapshot(tool, c, reg)
}

// MergeRunSnapshots recombines a complete set of per-shard run snapshots
// into the whole-corpus snapshot the unsharded run would have written
// (dce-trend's comma-grouped arguments).
func MergeRunSnapshots(snaps []*RunSnapshot) (*RunSnapshot, error) {
	return history.MergeShards(snaps)
}

// FingerprintFinding derives a finding's stable cross-run identity: a hash
// of its kind, configuration, primariness, and structural context — never
// the seed or marker name — so corpus renumbering and test-case reduction
// preserve it.
func FingerprintFinding(f Finding) string { return history.Fingerprint(f) }

// TrendDelta classifies two runs' findings as new, fixed, or persistent and
// lists metric regressions.
type TrendDelta = history.Delta

// DiffSnapshots diffs two run snapshots (oldest first).
func DiffSnapshots(old, new *RunSnapshot, o history.DiffOptions) *TrendDelta {
	return history.Diff(old, new, o)
}

// ReportTrend renders a cross-run delta as dce-trend prints it.
func ReportTrend(d *TrendDelta) string { return report.Trend(d) }

// ---------------------------------------------------------------------------
// Reports

// Report renders the full evaluation summary for a campaign.
func Report(c *Campaign) string { return report.Summary(c) }

// ReportPassProfile renders a compilation trace as a table; withTiming
// adds the wall-time column (and makes the output run-dependent).
func ReportPassProfile(p *TraceProfile, withTiming bool) string {
	return report.PassProfileTable(p, withTiming)
}

// ReportProvenance renders a compilation's marker→killer attribution.
func ReportProvenance(p *Provenance) string { return report.ProvenanceTable(p) }

// ReportAttributionTable renders eliminations-per-pass rows.
func ReportAttributionTable(title string, rows []PassElims) string {
	return report.AttributionTable(title, rows)
}
