// Span-timeline acceptance tests: a deterministic trace (dce-campaign
// -trace with -metrics=deterministic) must be byte-identical whether the
// campaign ran serially, on 8 workers, or was halted mid-run and resumed
// from its checkpoint — the same contract the report and metrics tables
// already honor.
package dcelens

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// runTraced runs one campaign variant with a deterministic file-backed span
// recorder and returns the trace bytes.
func runTraced(t *testing.T, path string, resume bool, o CampaignOptions) string {
	t.Helper()
	rec, err := OpenSpanTrace(path, resume, true)
	if err != nil {
		t.Fatal(err)
	}
	o.Spans = rec
	if _, err := RunCampaign(o); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestDeterministicTraceByteIdentity(t *testing.T) {
	const programs, baseSeed = 6, 400
	dir := t.TempDir()

	serial := runTraced(t, filepath.Join(dir, "serial.json"), false, CampaignOptions{
		Programs: programs, BaseSeed: baseSeed, Workers: 1,
	})
	parallel := runTraced(t, filepath.Join(dir, "parallel.json"), false, CampaignOptions{
		Programs: programs, BaseSeed: baseSeed, Workers: 8,
	})
	if parallel != serial {
		t.Errorf("8-worker trace differs from serial:\n--- serial\n%s\n--- parallel\n%s", serial, parallel)
	}

	// The trace is loadable and flagged deterministic, with every unit
	// present and its wall-clock fields redacted.
	p, err := AnalyzeSpanTrace([]byte(serial), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Deterministic {
		t.Fatal("trace not flagged deterministic")
	}
	if len(p.Units) == 0 || p.Units[0].Us != 0 {
		t.Fatalf("units = %+v, want redacted unit rows", p.Units)
	}

	// Halt + resume: drain after two seeds, resume on 8 workers appending to
	// the same trace file. The checkpointed baseline never stops. Restored
	// seeds emit no spans, so the concatenated trace must equal the
	// uninterrupted run's byte for byte.
	baseline := runTraced(t, filepath.Join(dir, "baseline.json"), false, CampaignOptions{
		Programs: programs, BaseSeed: baseSeed, Workers: 1,
		Checkpoint: NewCheckpoint(filepath.Join(dir, "baseline-cp.json")),
	})

	cpPath := filepath.Join(dir, "cp.json")
	tracePath := filepath.Join(dir, "resumed.json")
	var polls atomic.Int32
	runTraced(t, tracePath, false, CampaignOptions{
		Programs: programs, BaseSeed: baseSeed, Workers: 4,
		Checkpoint: NewCheckpoint(cpPath),
		Stop:       func() bool { return polls.Add(1) > 2 },
	})
	cp, err := LoadCheckpoint(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	resumed := runTraced(t, tracePath, true, CampaignOptions{
		Programs: programs, BaseSeed: baseSeed, Workers: 8,
		Checkpoint: cp,
	})
	if resumed != baseline {
		t.Errorf("halted+resumed trace differs from uninterrupted run:\n--- baseline\n%s\n--- resumed\n%s", baseline, resumed)
	}
}
