// Smoke tests for the parallel and sharded campaign surfaces of the cmd/*
// binaries: -j/-shard validation, parallel resume continuity, the
// shard-merge pipeline, and dce-trend's shard groups.
package dcelens

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCmdParallelFlagValidation: malformed -j and -shard values are usage
// errors (exit 2), not campaigns.
func TestCmdParallelFlagValidation(t *testing.T) {
	bad := [][]string{
		{"-j", "0"},
		{"-j", "-1"},
		{"-shard", "3/2"},
		{"-shard", "2/2"},
		{"-shard", "x"},
		{"-shard", "0/0"},
		{"-shard", "1"},
	}
	for _, args := range bad {
		args = append(args, "-n", "1")
		if code := exitCode(t, "dce-campaign", args...); code != 2 {
			t.Errorf("dce-campaign %s: exit %d, want 2", strings.Join(args, " "), code)
		}
	}
	if code := exitCode(t, "dce-report", "-merge", "a.json", "-bisect"); code != 2 {
		t.Errorf("dce-report -merge with -bisect: exit %d, want 2", code)
	}
}

// TestCmdCampaignParallelResume: a campaign halted under one worker count
// and resumed under another prints the same report as an uninterrupted
// serial run — parallelism composes with checkpoint/resume.
func TestCmdCampaignParallelResume(t *testing.T) {
	uninterrupted := runCmdStdout(t, "dce-campaign", "-n", "4", "-seed", "300", "-j", "1")

	cp := filepath.Join(t.TempDir(), "cp.json")
	halted := runCmdStdout(t, "dce-campaign", "-n", "4", "-seed", "300", "-j", "2",
		"-halt-after", "2", "-checkpoint", cp)
	if !strings.Contains(halted, "halted after 2 seeds") {
		t.Fatalf("halt not reported:\n%s", halted)
	}
	resumed := runCmdStdout(t, "dce-campaign", "-n", "4", "-seed", "300", "-j", "4",
		"-resume", "-checkpoint", cp)
	if resumed != uninterrupted {
		t.Errorf("parallel resume differs from serial uninterrupted run:\n--- serial\n%s\n--- resumed -j 4\n%s",
			uninterrupted, resumed)
	}
}

// TestCmdShardMergeEndToEnd: two dce-campaign -shard processes merged by
// dce-report -merge print the report an unsharded dce-report run prints.
func TestCmdShardMergeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	runCmdStdout(t, "dce-campaign", "-n", "4", "-seed", "400", "-shard", "0/2", "-checkpoint", a)
	runCmdStdout(t, "dce-campaign", "-n", "4", "-seed", "400", "-shard", "1/2", "-checkpoint", b)

	merged := runCmdStdout(t, "dce-report", "-merge", a+","+b)
	fresh := runCmdStdout(t, "dce-report", "-n", "4", "-seed", "400")
	if merged != fresh {
		t.Errorf("merged shard report differs from a fresh unsharded run:\n--- fresh\n%s\n--- merged\n%s",
			fresh, merged)
	}

	// A missing half is refused with a runtime error, not a partial report.
	if code := exitCode(t, "dce-report", "-merge", a); code != 1 {
		t.Errorf("dce-report -merge with half a shard set: exit %d, want 1", code)
	}
}

// TestCmdTrendShardGroups: comma-grouped shard snapshots merge into one
// run for diffing, and a lone shard snapshot is refused.
func TestCmdTrendShardGroups(t *testing.T) {
	snapshot := func(args ...string) string {
		t.Helper()
		dir := t.TempDir()
		args = append(args, "-quiet", "-metrics", "deterministic", "-history", dir)
		runCmdStdout(t, "dce-campaign", args...)
		files, err := filepath.Glob(filepath.Join(dir, "run-*.json"))
		if err != nil || len(files) != 1 {
			t.Fatalf("campaign %v wrote %v (%v)", args, files, err)
		}
		return files[0]
	}
	whole := snapshot("-n", "4", "-seed", "300")
	shard0 := snapshot("-n", "4", "-seed", "300", "-shard", "0/2")
	shard1 := snapshot("-n", "4", "-seed", "300", "-shard", "1/2")

	// The merged group diffs against the whole run as identical.
	out := runCmdStdout(t, "dce-trend", whole, shard0+","+shard1)
	if !strings.Contains(out, "0 new, 0 fixed") {
		t.Errorf("merged shard group is not identical to the whole run:\n%s", out)
	}

	// A lone shard snapshot must be refused with a pointer to grouping.
	bin := filepath.Join(buildCommands(t), "dce-trend")
	out2, err := exec.Command(bin, whole, shard0).CombinedOutput()
	if err == nil {
		t.Errorf("lone shard snapshot accepted:\n%s", out2)
	}
	if !strings.Contains(string(out2), "shard group") {
		t.Errorf("refusal does not explain shard grouping:\n%s", out2)
	}
}
