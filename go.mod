module dcelens

go 1.22
